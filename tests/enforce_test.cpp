// Enforcement subsystem tests: the ReputationLedger tier state machine
// (promotion evidence, hysteresis, block TTLs, memory cap, recovery), the
// scenario-separation proof (coordinated botnet blocked, low-and-slow
// discounted, NAT'd flash crowd left alone — all on deterministic seeds),
// snapshot round-trips under the repo's mutation-fuzz discipline, the
// blocklist exporters, and the wire-level EnforcingSink end to end over a
// real loopback socket with v1 and v2 clients side by side.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/snapshot_io.hpp"
#include "enforce/blocklist_export.hpp"
#include "enforce/reputation_ledger.hpp"
#include "server/client.hpp"
#include "server/enforcing_sink.hpp"
#include "server/ingest_server.hpp"
#include "stream/click.hpp"
#include "stream/generators.hpp"

namespace ppc::enforce {
namespace {

namespace detail = core::detail;

/// Fast-moving policy for tests: tier thresholds keep the paper defaults'
/// SHAPE (strictly increasing rates and evidence minimums) at time and
/// count scales a unit test can traverse.
EnforcementPolicy test_policy() {
  EnforcementPolicy p;
  p.flag_rate = 0.20;
  p.discount_rate = 0.35;
  p.block_rate = 0.55;
  p.flag_min_duplicates = 16;
  p.discount_min_duplicates = 64;
  p.block_min_duplicates = 256;
  p.blatant_rate = 0.90;
  p.blatant_min_duplicates = 64;
  p.rate_alpha = 1.0 / 64;
  p.min_clicks = 32;
  p.score_half_life_us = 2'000'000;
  p.block_ttl_us = 5'000'000;
  return p;
}

// ------------------------------------------------------- policy validation

TEST(EnforcementPolicy, RejectsInconsistentThresholds) {
  EnforcementPolicy p;
  EXPECT_NO_THROW(p.validate());

  p = {};
  p.discount_rate = p.flag_rate;  // rates must be strictly increasing
  EXPECT_THROW(ReputationLedger{p}, std::invalid_argument);
  p = {};
  p.block_rate = 1.5;
  EXPECT_THROW(ReputationLedger{p}, std::invalid_argument);
  p = {};
  p.discount_min_duplicates = p.flag_min_duplicates;
  EXPECT_THROW(ReputationLedger{p}, std::invalid_argument);
  p = {};
  p.blatant_rate = p.block_rate - 0.01;  // blatant must be >= block_rate
  EXPECT_THROW(ReputationLedger{p}, std::invalid_argument);
  p = {};
  p.demote_ratio = 1.0;  // equality would defeat the hysteresis gap
  EXPECT_THROW(ReputationLedger{p}, std::invalid_argument);
  p = {};
  p.block_ttl_us = 0;
  EXPECT_THROW(ReputationLedger{p}, std::invalid_argument);
  p = {};
  p.max_sources = 0;
  EXPECT_THROW(ReputationLedger{p}, std::invalid_argument);
}

// --------------------------------------------------- tier state machine

TEST(ReputationLedger, CleanTrafficNeverConsumesMemoryOrPromotes) {
  ReputationLedger ledger(test_policy());
  std::uint64_t t = 0;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_EQ(ledger.observe(0x0a000001 + (i % 100), 0, false, t += 1000),
              Tier::kClean);
  }
  EXPECT_EQ(ledger.size(), 0u) << "clean sources must not hold records";
  EXPECT_EQ(ledger.stats().observed, 10'000u);
}

TEST(ReputationLedger, PromotionRequiresRateAndGuaranteedEvidence) {
  // A source with a high duplicate RATE but too few duplicates stays
  // clean: a short burst is not sustained evidence.
  ReputationLedger ledger(test_policy());
  const std::uint32_t ip = 0x0a000001;
  std::uint64_t t = 0;
  // 40 clicks, 10 duplicates (rate ~0.25 > flag_rate) but 10 < 16 minimum.
  for (int i = 0; i < 40; ++i) {
    ledger.observe(ip, 0, i % 4 == 0, t += 1000);
  }
  EXPECT_EQ(ledger.tier_of(ip, 0), Tier::kClean);
  // Keep going: once the guaranteed count crosses flag_min_duplicates the
  // promotion fires (rate stays ~0.25).
  for (int i = 0; i < 60; ++i) {
    ledger.observe(ip, 0, i % 4 == 0, t += 1000);
  }
  EXPECT_EQ(ledger.tier_of(ip, 0), Tier::kFlagged);
  // ...but never higher: 0.25 < discount_rate, so one tier is the ceiling.
  for (int i = 0; i < 2000; ++i) {
    ledger.observe(ip, 0, i % 4 == 0, t += 1000);
  }
  EXPECT_EQ(ledger.tier_of(ip, 0), Tier::kFlagged);
}

TEST(ReputationLedger, PromotionsWalkOneTierPerObservation) {
  // Even a 100% duplicate source below the blatant rate threshold must
  // pass through kFlagged and kDiscounted on the way to kBlocked.
  EnforcementPolicy p = test_policy();
  p.blatant_rate = 1.0;  // keep the fast path out of this test
  p.blatant_min_duplicates = 1'000'000;
  ReputationLedger ledger(p);
  std::vector<std::pair<Tier, Tier>> moves;
  ledger.set_transition_callback([&](const TierTransition& tr) {
    moves.push_back({tr.from, tr.to});
  });
  std::uint64_t t = 0;
  const std::uint32_t ip = 0x0a000002;
  for (int i = 0; i < 1000 && ledger.tier_of(ip, 0) != Tier::kBlocked; ++i) {
    // 9-in-10 duplicates: rate ~0.9 < blatant 1.0.
    ledger.observe(ip, 0, i % 10 != 0, t += 1000);
  }
  ASSERT_EQ(ledger.tier_of(ip, 0), Tier::kBlocked);
  ASSERT_EQ(moves.size(), 3u);
  EXPECT_EQ(moves[0], (std::pair{Tier::kClean, Tier::kFlagged}));
  EXPECT_EQ(moves[1], (std::pair{Tier::kFlagged, Tier::kDiscounted}));
  EXPECT_EQ(moves[2], (std::pair{Tier::kDiscounted, Tier::kBlocked}));
}

TEST(ReputationLedger, BlatantAttackIsBlockedImmediately) {
  // Fast-warming EWMA (alpha 1/4): by the first promotion-eligible click
  // (min_clicks = 32) a pure-duplicate source is already at rate ~1.0 with
  // 31 guaranteed duplicates — the blatant fast path fires before the
  // normal one-tier-at-a-time walk ever gets a turn.
  EnforcementPolicy p = test_policy();
  p.rate_alpha = 1.0 / 4;
  p.blatant_min_duplicates = 24;
  ReputationLedger ledger(p);
  std::vector<std::pair<Tier, Tier>> moves;
  ledger.set_transition_callback([&](const TierTransition& tr) {
    moves.push_back({tr.from, tr.to});
  });
  std::uint64_t t = 0;
  const std::uint32_t ip = 0x0a000003;
  // Pure duplicates: rate → 1 ≥ blatant_rate once min_clicks and the
  // blatant evidence floor are met — one jump, no intermediate tiers.
  for (int i = 0; i < 200 && ledger.tier_of(ip, 0) != Tier::kBlocked; ++i) {
    ledger.observe(ip, 0, true, t += 1000);
  }
  ASSERT_EQ(ledger.tier_of(ip, 0), Tier::kBlocked);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0], (std::pair{Tier::kClean, Tier::kBlocked}));
}

TEST(ReputationLedger, BlockExpiresIntoAnalysisTierThenRecovers) {
  // TTL much shorter than the score half-life: at expiry the evidence has
  // barely decayed, so the source lands exactly in the analysis tier
  // (kDiscounted) instead of falling further.
  EnforcementPolicy p = test_policy();
  p.score_half_life_us = 30'000'000;
  p.block_ttl_us = 1'000'000;
  ReputationLedger ledger(p);
  std::uint64_t t = 0;
  const std::uint32_t ip = 0x0a000004;
  while (ledger.tier_of(ip, 0) != Tier::kBlocked) {
    ledger.observe(ip, 0, true, t += 1000);
  }
  const std::uint64_t ttl = ledger.policy().block_ttl_us;
  // Within the TTL the block holds (decide applies due transitions).
  EXPECT_EQ(ledger.decide(ip, 0, t + ttl / 2), Tier::kBlocked);
  // Past the TTL the block lapses into kDiscounted — the analysis phase —
  // never straight to clean.
  const Tier after = ledger.decide(ip, 0, t + ttl + 1);
  EXPECT_EQ(after, Tier::kDiscounted);
  EXPECT_EQ(ledger.stats().block_expiries, 1u);
  // With no further offenses the score decays through every hold point and
  // the record is eventually erased: reputations recover.
  const std::uint64_t far = t + ttl + 400 * ledger.policy().score_half_life_us;
  EXPECT_EQ(ledger.decide(ip, 0, far), Tier::kClean);
  EXPECT_EQ(ledger.sweep(far), 1u);
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(ReputationLedger, ReoffendingWhileBlockedExtendsTheBlock) {
  ReputationLedger ledger(test_policy());
  std::uint64_t t = 0;
  const std::uint32_t ip = 0x0a000005;
  while (ledger.tier_of(ip, 0) != Tier::kBlocked) {
    ledger.observe(ip, 0, true, t += 1000);
  }
  const std::uint64_t ttl = ledger.policy().block_ttl_us;
  // Keep offending close to the expiry: each duplicate pushes
  // blocked_until out again, so the source stays blocked far beyond the
  // original TTL.
  for (int i = 0; i < 5; ++i) {
    t += ttl - 1000;
    EXPECT_EQ(ledger.observe(ip, 0, true, t), Tier::kBlocked);
  }
  EXPECT_EQ(ledger.decide(ip, 0, t + ttl - 1000), Tier::kBlocked);
  EXPECT_EQ(ledger.stats().block_expiries, 0u);
}

TEST(ReputationLedger, HysteresisHoldsTierAgainstShortQuietSpells) {
  ReputationLedger ledger(test_policy());
  std::uint64_t t = 0;
  const std::uint32_t ip = 0x0a000006;
  while (ledger.tier_of(ip, 0) != Tier::kFlagged) {
    ledger.observe(ip, 0, true, t += 1000);
  }
  // A quiet spell shorter than the decay needed to cross the demote hold
  // (demote_ratio × flag_min_duplicates) keeps the tier.
  EXPECT_EQ(ledger.decide(ip, 0, t + ledger.policy().score_half_life_us),
            Tier::kFlagged);
  // A long silence demotes — and the demotion is reported.
  std::size_t demotions = 0;
  ledger.set_transition_callback([&](const TierTransition& tr) {
    if (tr.to < tr.from) ++demotions;
  });
  EXPECT_EQ(
      ledger.decide(ip, 0, t + 40 * ledger.policy().score_half_life_us),
      Tier::kClean);
  EXPECT_EQ(demotions, 1u);
}

TEST(ReputationLedger, MemoryStaysBoundedAndEvidenceIsNeverEvicted) {
  EnforcementPolicy p = test_policy();
  p.max_sources = 64;
  ReputationLedger ledger(p);
  std::uint64_t t = 0;
  // Promote 64 sources to kFlagged: the ledger is now full of standing
  // evidence.
  for (std::uint32_t s = 0; s < 64; ++s) {
    const std::uint32_t ip = 0x14000000 + s;
    for (int i = 0; i < 80; ++i) {
      ledger.observe(ip, 0, i % 3 != 0, t += 100);  // rate ~0.66
    }
    ASSERT_GE(ledger.tier_of(ip, 0), Tier::kFlagged) << "source " << s;
  }
  EXPECT_EQ(ledger.size(), 64u);
  // New offenders cannot evict flagged records: admissions are dropped and
  // counted, the cap holds, and every flagged source keeps its tier.
  for (std::uint32_t s = 0; s < 100; ++s) {
    ledger.observe(0x15000000 + s, 0, true, t += 100);
  }
  EXPECT_EQ(ledger.size(), 64u);
  EXPECT_EQ(ledger.stats().dropped_admissions, 100u);
  EXPECT_GE(ledger.stats().flagged + ledger.stats().discounted +
                ledger.stats().blocked,
            64u);
}

TEST(ReputationLedger, PublisherKeyedLedgerSeparatesPublishers) {
  EnforcementPolicy p = test_policy();
  p.key_by_publisher = true;
  ReputationLedger ledger(p);
  std::uint64_t t = 0;
  const std::uint32_t nat = 0x0a00000a;
  // The same NAT ip is dirty via publisher 7 and clean via publisher 8.
  for (int i = 0; i < 400; ++i) {
    ledger.observe(nat, 7, true, t += 500);
    ledger.observe(nat, 8, false, t += 500);
  }
  EXPECT_EQ(ledger.tier_of(nat, 7), Tier::kBlocked);
  EXPECT_EQ(ledger.tier_of(nat, 8), Tier::kClean);
}

// ------------------------------------------------- scenario separation

/// Exact duplicate oracle at the identity policy the enforcement stack
/// keys on: (ip, cookie, ad).
class DuplicateOracle {
 public:
  bool offer(const stream::Click& c) {
    return !seen_
                .insert(stream::click_identifier(
                    c, stream::IdentifierPolicy::kIpCookieAndAd))
                .second;
  }

 private:
  std::unordered_set<core::ClickId> seen_;
};

std::unique_ptr<stream::ClickGenerator> background(std::uint64_t seed) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = seed;
  opts.user_count = 200'000;  // broad population: little organic dup noise
  return std::make_unique<stream::MixedTrafficStream>(opts);
}

TEST(ScenarioSeparation, CoordinatedBotnetRampIsBlockedWithinTheRamp) {
  stream::CoordinatedBotnetStream::Options opts;
  opts.bot_count = 16;
  opts.peak_fraction = 0.60;
  opts.ramp_start_us = 0;
  opts.ramp_us = 10'000'000;
  opts.seed = 20260808;
  stream::CoordinatedBotnetStream gen(background(101), opts);

  ReputationLedger ledger(test_policy());
  std::uint64_t first_block_us = 0;
  ledger.set_transition_callback([&](const TierTransition& tr) {
    if (tr.to == Tier::kBlocked && first_block_us == 0) {
      first_block_us = tr.at_us;
    }
  });
  DuplicateOracle oracle;
  for (int i = 0; i < 30'000; ++i) {
    const stream::Click c = gen.next();
    ledger.observe(c.source_ip, 0, oracle.offer(c), c.time_us);
  }
  // Every bot identity is blocked by stream end...
  for (std::uint32_t b = 0; b < opts.bot_count; ++b) {
    EXPECT_EQ(ledger.tier_of(gen.bot_ip(b), 0), Tier::kBlocked)
        << "bot " << b << " escaped";
  }
  // ...and the first block landed while the attack was still ramping.
  ASSERT_GT(first_block_us, 0u);
  EXPECT_LT(first_block_us, opts.ramp_start_us + opts.ramp_us)
      << "enforcement slower than the attack ramp";
}

TEST(ScenarioSeparation, LowAndSlowFraudReachesDiscountByAccumulation) {
  stream::LowAndSlowFraudStream::Options opts;
  opts.fraud_source_count = 4;
  opts.fraud_fraction = 0.10;
  opts.fresh_cookie_probability = 0.55;  // per-source dup rate ~0.45
  opts.seed = 20260808;
  stream::LowAndSlowFraudStream gen(background(102), opts);

  ReputationLedger ledger(test_policy());
  DuplicateOracle oracle;
  for (int i = 0; i < 60'000; ++i) {
    const stream::Click c = gen.next();
    ledger.observe(c.source_ip, 0, oracle.offer(c), c.time_us);
  }
  // Rate alone (~0.45) could never cross block_rate 0.55; the accumulated
  // guaranteed duplicates push each fraud source to the discount tier.
  for (std::uint32_t s = 0; s < opts.fraud_source_count; ++s) {
    EXPECT_GE(ledger.tier_of(gen.fraud_ip(s), 0), Tier::kDiscounted)
        << "low-and-slow source " << s << " was never caught";
  }
}

TEST(ScenarioSeparation, NatFlashCrowdIsNeverBlockedOrDiscounted) {
  stream::NatFlashCrowdStream::Options opts;
  // Crowd larger than the observed stream: the flash stays a stream of
  // mostly-distinct users, as a real crowd is — duplicates come only from
  // the 8% genuine revisits.
  opts.crowd_size = 50'000;
  opts.revisit_probability = 0.08;
  opts.seed = 20260808;
  stream::NatFlashCrowdStream gen(opts);

  ReputationLedger ledger(test_policy());
  DuplicateOracle oracle;
  Tier worst = Tier::kClean;
  for (int i = 0; i < 30'000; ++i) {
    const stream::Click c = gen.next();
    const Tier tier = ledger.observe(c.source_ip, 0, oracle.offer(c),
                                     c.time_us);
    if (tier > worst) worst = tier;
  }
  // Thousands of legitimate users behind one IP, burst arrival rate, real
  // revisit duplicates — and the per-source duplicate rate still never
  // sustains the discount threshold. kFlagged (review) is the worst
  // allowed; blocking a NAT would cut off the whole crowd.
  EXPECT_LE(worst, Tier::kFlagged) << "flash crowd was punished as fraud";
  EXPECT_LE(ledger.tier_of(opts.nat_ip, 0), Tier::kFlagged);
}

// --------------------------------------------------- snapshots + exports

std::string saved_bytes(const ReputationLedger& ledger) {
  std::ostringstream out(std::ios::binary);
  ledger.save(out);
  return out.str();
}

std::string rewrap(const std::string& payload) {
  std::stringstream out;
  detail::write_section(out, detail::kEnforceMagic, payload);
  return out.str();
}

std::string unwrap(const std::string& bytes) {
  std::stringstream in(bytes);
  return detail::read_section(in, detail::kEnforceMagic, "fuzz");
}

/// A ledger with every tier populated, blocks live, decayed scores — the
/// state the fuzz and round-trip tests start from.
ReputationLedger populated_ledger() {
  ReputationLedger ledger(test_policy());
  std::uint64_t t = 0;
  for (std::uint32_t s = 0; s < 40; ++s) {
    const std::uint32_t ip = 0x0a010000 + s;
    const double dup_rate = s % 4 == 0 ? 0.95 : (s % 4 == 1 ? 0.45 : 0.1);
    stream::Rng rng(s + 1);
    for (int i = 0; i < 300; ++i) {
      ledger.observe(ip, 0, rng.chance(dup_rate), t += 137);
    }
  }
  return ledger;
}

TEST(LedgerSnapshot, RoundTripIsExactAndExportsAreBitIdentical) {
  ReputationLedger ledger = populated_ledger();
  const std::string bytes = saved_bytes(ledger);

  ReputationLedger restored(test_policy());
  std::istringstream in(bytes, std::ios::binary);
  restored.restore(in);

  // Record-level equality...
  const auto a = ledger.records();
  const auto b = restored.records();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].tier, b[i].tier);
    EXPECT_EQ(a[i].clicks, b[i].clicks);
    EXPECT_EQ(a[i].duplicates, b[i].duplicates);
    EXPECT_EQ(a[i].rate, b[i].rate);    // bit-exact via bit_cast
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].blocked_until_us, b[i].blocked_until_us);
  }
  // ...counter equality...
  const auto sa = ledger.stats();
  const auto sb = restored.stats();
  EXPECT_EQ(sa.observed, sb.observed);
  EXPECT_EQ(sa.promotions, sb.promotions);
  EXPECT_EQ(sa.blocked, sb.blocked);
  // ...and both exports are deterministic functions of the state:
  // byte-identical across the round trip.
  EXPECT_EQ(export_csv(ledger), export_csv(restored));
  EXPECT_EQ(export_nftables(ledger), export_nftables(restored));
  // Save-of-restore is a fixpoint at the record level (the offender
  // summary may legitimately reorder tied counters, so the bytes are not
  // required to match — the observable state is).
  ReputationLedger second(test_policy());
  std::istringstream in2(saved_bytes(restored), std::ios::binary);
  second.restore(in2);
  EXPECT_EQ(export_csv(second), export_csv(ledger));
  EXPECT_EQ(export_nftables(second), export_nftables(ledger));
  EXPECT_EQ(second.records().size(), a.size());
}

TEST(LedgerSnapshot, EveryTruncationRejected) {
  const std::string bytes = saved_bytes(populated_ledger());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    ReputationLedger target(test_policy());
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW(target.restore(in), std::exception)
        << "truncation at byte " << keep << " accepted";
    EXPECT_EQ(target.size(), 0u) << "failed restore left state behind";
  }
}

TEST(LedgerSnapshot, EveryByteFlipRejected) {
  const std::string bytes = saved_bytes(populated_ledger());
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (const std::uint8_t delta : {0x01, 0x80, 0xff}) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
      ReputationLedger target(test_policy());
      std::istringstream in(mutated, std::ios::binary);
      EXPECT_THROW(target.restore(in), std::exception)
          << "flip of byte " << pos << " by " << int{delta} << " accepted";
    }
  }
}

TEST(LedgerSnapshot, ForgedRecordCountWithValidCrcRejected) {
  // Rewrite the record count inside the payload and re-wrap with a VALID
  // header + CRC: only the payload-level validation can catch it now.
  const std::string payload = unwrap(saved_bytes(populated_ledger()));
  for (const std::uint64_t forged_count :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{39},
        std::uint64_t{41}, std::uint64_t{1'000'000},
        ~std::uint64_t{0}}) {
    std::string forged = payload;
    // Payload layout: u64 key_by_publisher, u64 record_count, ...
    for (int b = 0; b < 8; ++b) {
      forged[8 + b] = static_cast<char>(forged_count >> (8 * b));
    }
    ReputationLedger target(test_policy());
    std::istringstream in(rewrap(forged), std::ios::binary);
    EXPECT_THROW(target.restore(in), std::exception)
        << "forged count " << forged_count << " accepted";
  }
}

TEST(LedgerSnapshot, PolicyKeyModeMismatchRejected) {
  const std::string bytes = saved_bytes(populated_ledger());
  EnforcementPolicy keyed = test_policy();
  keyed.key_by_publisher = true;
  ReputationLedger target(keyed);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(target.restore(in), std::runtime_error);
}

TEST(BlocklistExport, CsvListsFlaggedAndAboveNftablesOnlyBlocked) {
  ReputationLedger ledger = populated_ledger();
  std::size_t flagged_or_worse = 0, blocked = 0;
  for (const auto& r : ledger.records()) {
    if (r.tier >= Tier::kFlagged) ++flagged_or_worse;
    if (r.tier == Tier::kBlocked) ++blocked;
  }
  ASSERT_GT(blocked, 0u) << "fixture must contain blocked sources";
  const std::string csv = export_csv(ledger);
  // Header + one line per record at kFlagged or above.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1 + flagged_or_worse);
  const std::string nft = export_nftables(ledger);
  EXPECT_NE(nft.find("type ipv4_addr"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(std::count(
                nft.begin(), nft.end(), '.')),
            3 * blocked);  // each IPv4 element has exactly three dots
}

TEST(BlocklistExport, DecisionJournalRecordsEveryTransition) {
  const std::string path =
      testing::TempDir() + "/enforce_journal_test.log";
  std::remove(path.c_str());
  std::vector<std::string> expected;
  {
    DecisionJournal journal(path);
    ReputationLedger ledger(test_policy());
    ledger.set_transition_callback([&](const TierTransition& tr) {
      journal.append(tr);
      expected.push_back(format_transition(tr));
    });
    std::uint64_t t = 0;
    for (int i = 0; i < 300; ++i) ledger.observe(0x0afe0001, 0, true, t += 997);
    ledger.decide(0x0afe0001, 0, t + 1'000'000'000);  // expiry + demotions
    EXPECT_EQ(journal.lines(), expected.size());
    ASSERT_GE(expected.size(), 2u);  // at least block + expiry
  }
  std::ifstream in(path);
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(line, expected[i]) << "journal line " << i;
    ++i;
  }
  EXPECT_EQ(i, expected.size());
  std::remove(path.c_str());
}

// ------------------------------------------------- wire-level enforcement

/// Inner sink with oracle-exact duplicate memory; counts what actually
/// reaches it so tests can prove blocked clicks never arrive.
class ExactSink final : public server::ClickSink {
 public:
  void offer(std::span<const std::uint32_t> /*ads*/,
             std::span<const core::ClickId> ids,
             std::span<const std::uint64_t> /*times*/,
             std::span<bool> out) override {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      out[i] = !seen_.insert(ids[i]).second;
    }
    offered_ += ids.size();
  }
  std::string describe() const override { return "exact-set"; }
  std::uint64_t offered() const noexcept { return offered_; }

 private:
  std::unordered_set<core::ClickId> seen_;
  std::uint64_t offered_ = 0;
};

EnforcementPolicy wire_policy() {
  EnforcementPolicy p;
  p.flag_min_duplicates = 4;
  p.discount_min_duplicates = 8;
  p.block_min_duplicates = 16;
  p.blatant_min_duplicates = 16;
  p.rate_alpha = 1.0 / 8;
  p.min_clicks = 8;
  p.score_half_life_us = 60'000'000;
  p.block_ttl_us = 600'000'000;
  return p;
}

TEST(EnforcingSinkE2E, BlockedSourceIsRejectedAtTheWire) {
  ExactSink inner;
  ReputationLedger ledger(wire_policy());
  server::EnforcingSink sink(inner, ledger);
  server::IngestServer server(sink);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  std::thread loop([&] { server.run(); });

  const std::uint32_t attacker = 0x0a0a0a0a;
  const std::uint32_t innocent = 0x14141414;
  std::uint64_t now = 1'000'000;
  std::uint64_t sent_clicks = 0, true_verdicts = 0;

  server::BlockingClient v2;
  v2.connect("127.0.0.1", port);
  v2.handshake(server::wire::kProtocolVersionV2);

  auto exchange = [&](std::uint64_t seq,
                      std::span<const server::wire::ClickRecordV2> batch) {
    v2.send_click_batch_v2(seq, batch);
    sent_clicks += batch.size();
    server::wire::FrameView frame;
    EXPECT_TRUE(v2.read_frame(frame));
    EXPECT_EQ(frame.type, server::wire::FrameType::kVerdictBatch);
    server::wire::VerdictBatchView view;
    std::string err;
    EXPECT_TRUE(parse_verdict_batch(frame.payload, view, err)) << err;
    EXPECT_EQ(view.seq, seq);
    EXPECT_EQ(view.count, batch.size());
    std::vector<bool> verdicts(view.count);
    for (std::uint32_t i = 0; i < view.count; ++i) {
      verdicts[i] = view.duplicate(i);
      true_verdicts += verdicts[i] ? 1 : 0;
    }
    return verdicts;
  };

  // Batch 0: the attacker hammers 4 identities 16 times each — the inner
  // detector calls the repeats duplicates, and the ledger walks the source
  // to kBlocked inside this batch.
  std::vector<server::wire::ClickRecordV2> batch0;
  for (int i = 0; i < 64; ++i) {
    batch0.push_back({7, 0xa000 + static_cast<std::uint64_t>(i % 4),
                      now += 1000, attacker});
  }
  const std::vector<bool> v0 = exchange(0, batch0);
  std::size_t dups0 = 0;
  for (const bool d : v0) dups0 += d ? 1 : 0;
  EXPECT_EQ(dups0, 60u);  // 4 firsts clean, 60 repeats — none rejected yet

  // Batch 1: fresh ids from the attacker (clean by inner logic) plus fresh
  // ids from an innocent source. The attacker is rejected at the wire; the
  // innocent clicks flow through untouched.
  std::vector<server::wire::ClickRecordV2> batch1;
  for (int i = 0; i < 32; ++i) {
    batch1.push_back({7, 0xb000 + static_cast<std::uint64_t>(i), now += 1000,
                      attacker});
    batch1.push_back({7, 0xc000 + static_cast<std::uint64_t>(i), now += 1000,
                      innocent});
  }
  const std::vector<bool> v1 = exchange(1, batch1);
  for (std::size_t i = 0; i < v1.size(); ++i) {
    const bool from_attacker = batch1[i].source_ip == attacker;
    EXPECT_EQ(v1[i], from_attacker)
        << "click " << i << (from_attacker ? " leaked past the block"
                                           : " falsely rejected");
  }

  // DRAIN: totals exact — every click sent has exactly one verdict, the
  // rejected ones included.
  v2.send_drain();
  server::wire::FrameView frame;
  ASSERT_TRUE(v2.read_frame(frame));
  ASSERT_EQ(frame.type, server::wire::FrameType::kDrainAck);
  std::uint64_t acc_clicks = 0, acc_dups = 0;
  std::string err;
  ASSERT_TRUE(
      server::wire::parse_drain_ack(frame.payload, acc_clicks, acc_dups, err));
  EXPECT_EQ(acc_clicks, sent_clicks);
  EXPECT_EQ(acc_dups, true_verdicts);

  // STATS over the same wire: the enforcement counters surface.
  const server::wire::StatsReport stats = v2.request_stats();
  EXPECT_EQ(stats.enforce_rejected, 32u);
  EXPECT_EQ(stats.enforce_blocked, 1u);
  EXPECT_GE(stats.enforce_sources, 1u);

  // A legacy v1 client on the same server is untouched by enforcement:
  // same frames, same verdicts, no source attribution, no ledger contact.
  server::BlockingClient v1c;
  v1c.connect("127.0.0.1", port);
  v1c.handshake();  // version 1
  std::vector<server::wire::ClickRecord> legacy;
  for (int i = 0; i < 16; ++i) {
    legacy.push_back({9, 0xd000 + static_cast<std::uint64_t>(i), now += 1000});
  }
  v1c.send_click_batch(5, legacy);
  ASSERT_TRUE(v1c.read_frame(frame));
  ASSERT_EQ(frame.type, server::wire::FrameType::kVerdictBatch);
  server::wire::VerdictBatchView legacy_view;
  ASSERT_TRUE(parse_verdict_batch(frame.payload, legacy_view, err));
  ASSERT_EQ(legacy_view.count, 16u);
  for (std::uint32_t i = 0; i < legacy_view.count; ++i) {
    EXPECT_FALSE(legacy_view.duplicate(i)) << "fresh v1 click flagged";
  }
  // And a v2 frame on the v1 connection is a protocol error (the server
  // closes the connection).
  std::vector<std::uint8_t> bad;
  server::wire::append_click_batch_v2(bad, 6, batch0);
  v1c.send_raw(bad);
  EXPECT_FALSE(v1c.read_frame(frame)) << "v1 connection accepted a v2 frame";

  server.stop();
  loop.join();
  const server::IngestServer::Stats drained = server.drain();
  EXPECT_EQ(drained.clicks, sent_clicks + legacy.size());

  // The inner sink never saw the 32 rejected clicks.
  EXPECT_EQ(inner.offered(), 64u + 32u + 16u);
  EXPECT_EQ(sink.rejected(), 32u);

  // The blocklist the operator exports round-trips through the ledger
  // snapshot bit-identically, blocked attacker included.
  const std::string csv = export_csv(ledger);
  const std::string nft = export_nftables(ledger);
  EXPECT_NE(csv.find(stream::format_ip(attacker)), std::string::npos);
  EXPECT_NE(nft.find(stream::format_ip(attacker)), std::string::npos);
  ReputationLedger restored(wire_policy());
  std::stringstream snap;
  ledger.save(snap);
  restored.restore(snap);
  EXPECT_EQ(export_csv(restored), csv);
  EXPECT_EQ(export_nftables(restored), nft);
}

}  // namespace
}  // namespace ppc::enforce
