// Crash-recovery equivalence suite: the durability claim behind
// snapshot-on-drain is that save → load → continue produces verdicts
// BIT-IDENTICAL to a run that never stopped. This file proves it at every
// layer of the serving stack:
//
//   1. single filters (GBF count, TBF time) through the new instance
//      restore() path, at checkpoints including mid-cleaning;
//   2. TBF across its modulo-(N+C) wraparound-counter boundary — the
//      regression the incremental stale scan must survive (an expired
//      entry that aliases as fresh after restore is a billing bug);
//   3. ShardedDetector in both synchronization designs (mutex and the
//      lock-free owner engine), fed through the production batch path;
//   4. DetectorPool with interleaved multi-ad timed batches;
//   5. the full daemon: an IngestServer run over loopback, drained to a
//      snapshot file, restarted from it, replaying the second half of the
//      stream — concatenated wire verdicts equal a single-process oracle;
//   6. the ppcd binary itself (cli_test style): --snapshot writes a
//      loadable file on SIGTERM, --restore refuses mismatched configs
//      with errors naming the mismatched dimension;
// plus mutation fuzz of the snapshot FILE envelope (every truncation,
// every byte flip) in the wire_fuzz_test.cpp discipline.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adnet/detector_pool.hpp"
#include "baseline/landmark_detector.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/sharded_detector.hpp"
#include "core/timing_bloom_filter.hpp"
#include "detector_test_util.hpp"
#include "server/client.hpp"
#include "server/ingest_server.hpp"
#include "server/server_config.hpp"
#include "stream/click.hpp"
#include "stream/generators.hpp"

namespace ppc {
namespace {

using core::ClickId;
using core::DuplicateDetector;
using core::WindowSpec;

using MakeFn = std::function<std::unique_ptr<DuplicateDetector>()>;

/// The core harness: `reference` runs uninterrupted; `live` is saved at
/// arrival `checkpoint`, restored into a FRESH instance, which then
/// continues. Every verdict must match, arrival for arrival.
void check_checkpoint_equivalence(const MakeFn& make,
                                  std::span<const ClickId> ids,
                                  const std::uint64_t* times,
                                  std::size_t checkpoint) {
  auto reference = make();
  auto live = make();
  std::unique_ptr<DuplicateDetector> resumed;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i == checkpoint) {
      std::stringstream buffer;
      live->save(buffer);
      resumed = make();
      resumed->restore(buffer);
    }
    DuplicateDetector& d = resumed ? *resumed : *live;
    const std::uint64_t t = times != nullptr ? times[i] : 0;
    ASSERT_EQ(d.offer(ids[i], t), reference->offer(ids[i], t))
        << "diverged at arrival " << i << " (checkpoint " << checkpoint
        << ")";
  }
}

/// Batch-path harness: both runs are fed through offer_batch in identical
/// `chunk`-sized pieces (the production ingest shape); the checkpoint falls
/// on the chunk boundary at/after `checkpoint_near`.
void check_checkpoint_equivalence_batched(const MakeFn& make,
                                          std::span<const ClickId> ids,
                                          std::span<const std::uint64_t> times,
                                          std::size_t checkpoint_near,
                                          std::size_t chunk = 113) {
  auto reference = make();
  auto live = make();
  std::unique_ptr<DuplicateDetector> resumed;
  std::vector<char> ref_out(chunk), live_out(chunk);
  for (std::size_t start = 0; start < ids.size(); start += chunk) {
    if (start >= checkpoint_near && !resumed) {
      std::stringstream buffer;
      live->save(buffer);
      resumed = make();
      resumed->restore(buffer);
    }
    const std::size_t n = std::min(chunk, ids.size() - start);
    const auto id_chunk = ids.subspan(start, n);
    const auto time_chunk = times.subspan(start, n);
    const std::span<bool> ref_span(reinterpret_cast<bool*>(ref_out.data()), n);
    const std::span<bool> live_span(reinterpret_cast<bool*>(live_out.data()),
                                    n);
    reference->offer_batch(id_chunk, time_chunk, ref_span);
    DuplicateDetector& d = resumed ? *resumed : *live;
    d.offer_batch(id_chunk, time_chunk, live_span);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(live_span[i], ref_span[i])
          << "diverged at arrival " << start + i;
    }
  }
}

std::vector<std::uint64_t> monotone_times(std::size_t count,
                                          std::uint64_t step_us,
                                          std::uint64_t jitter_seed) {
  std::vector<std::uint64_t> times(count);
  std::uint64_t t = 0, x = jitter_seed | 1;
  for (auto& v : times) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    t += x % (step_us + 1);
    v = t;
  }
  return times;
}

// --- 1. single filters ----------------------------------------------------

struct CheckpointCase {
  std::size_t at;
};

class GbfDurability : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(GbfDurability, CountWindowResumeIsBitIdentical) {
  const MakeFn make = [] {
    core::GroupBloomFilter::Options o;
    o.bits_per_subfilter = 1 << 14;
    o.hash_count = 5;
    o.seed = 21;
    return std::make_unique<core::GroupBloomFilter>(
        WindowSpec::jumping_count(512, 4), o);
  };
  const auto ids = testutil::make_id_stream(6000, 0.35, 1024, 31);
  check_checkpoint_equivalence(make, ids, nullptr, GetParam().at);
}

INSTANTIATE_TEST_SUITE_P(Checkpoints, GbfDurability,
                         ::testing::Values(CheckpointCase{0},
                                           CheckpointCase{1},
                                           CheckpointCase{257},
                                           CheckpointCase{511},
                                           CheckpointCase{512},
                                           CheckpointCase{1300},
                                           CheckpointCase{4096}));

class TbfTimeDurability : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(TbfTimeDurability, TimeWindowResumeIsBitIdentical) {
  const MakeFn make = [] {
    core::TimingBloomFilter::Options o;
    o.entries = 1 << 14;
    o.hash_count = 5;
    o.seed = 22;
    return std::make_unique<core::TimingBloomFilter>(
        WindowSpec::sliding_time(500'000, 10'000), o);
  };
  const auto ids = testutil::make_id_stream(5000, 0.35, 512, 32);
  const auto times = monotone_times(ids.size(), 400, 17);
  check_checkpoint_equivalence(make, ids, times.data(), GetParam().at);
}

INSTANTIATE_TEST_SUITE_P(Checkpoints, TbfTimeDurability,
                         ::testing::Values(CheckpointCase{0},
                                           CheckpointCase{1},
                                           CheckpointCase{700},
                                           CheckpointCase{2048},
                                           CheckpointCase{4999}));

// --- 2. TBF wraparound-counter boundary -----------------------------------

core::TimingBloomFilter::Options wrap_tbf_opts() {
  core::TimingBloomFilter::Options o;
  o.entries = 1 << 14;  // large enough that false positives are ~impossible
  o.hash_count = 5;
  o.c = 7;  // wrap = 64 + 7 = 71: small, so the sweep crosses it often
  o.seed = 23;
  return o;
}

TEST(TbfWraparoundDurability, CheckpointSweepAcrossWrapBoundary) {
  const MakeFn make = [] {
    return std::make_unique<core::TimingBloomFilter>(
        WindowSpec::sliding_count(64), wrap_tbf_opts());
  };
  const auto ids = testutil::make_id_stream(600, 0.4, 96, 33);
  // pos_ advances once per arrival (granularity 1), modulo wrap = 71.
  // Sweep every checkpoint around the first wrap (pos_ within C of
  // wrapping and just past it) and around the second.
  for (std::size_t cp = 63; cp <= 73; ++cp) {
    check_checkpoint_equivalence(make, ids, nullptr, cp);
  }
  for (std::size_t cp = 138; cp <= 145; ++cp) {
    check_checkpoint_equivalence(make, ids, nullptr, cp);
  }
}

TEST(TbfWraparoundDurability, StaleScanReclaimsExpiredEntriesAfterRestore) {
  // Save while the tick counter sits within C of wrapping, restore, run the
  // counter through the wrap, and verify every pre-checkpoint entry has
  // been reclaimed: an id whose age passed the window must NOT come back
  // as a duplicate (aliasing-as-fresh = silently billing a valid click).
  for (std::size_t checkpoint = 64; checkpoint <= 70; ++checkpoint) {
    core::TimingBloomFilter live(WindowSpec::sliding_count(64),
                                 wrap_tbf_opts());
    for (std::size_t i = 1; i <= checkpoint; ++i) {
      ASSERT_FALSE(live.offer(i)) << "unique id reported duplicate";
    }
    std::stringstream buffer;
    live.save(buffer);
    auto resumed = core::TimingBloomFilter::load(buffer);

    // 70 fresh arrivals push pos_ through the wrap; ids 1..20 now have
    // ages well past wrap_ — exactly the aliasing regime.
    for (std::size_t j = 0; j < 70; ++j) {
      ASSERT_FALSE(resumed->offer(1'000'000 + checkpoint * 1000 + j));
    }
    for (std::size_t i = 1; i <= 20; ++i) {
      EXPECT_FALSE(resumed->offer(i))
          << "expired id " << i << " aliased as fresh after restore at "
          << checkpoint;
    }
  }
}

// --- 3. ShardedDetector, both engine modes --------------------------------

MakeFn make_sharded(core::ShardedDetector::EngineMode mode) {
  return [mode] {
    core::ShardedDetector::Options opts;
    opts.engine = mode;
    opts.threads = 2;
    return std::make_unique<core::ShardedDetector>(
        4,
        [](std::size_t) {
          core::GroupBloomFilter::Options o;
          o.bits_per_subfilter = 1 << 12;
          o.hash_count = 5;
          o.seed = 24;
          return std::make_unique<core::GroupBloomFilter>(
              WindowSpec::jumping_count(256, 4), o);
        },
        opts);
  };
}

class ShardedDurability
    : public ::testing::TestWithParam<core::ShardedDetector::EngineMode> {};

TEST_P(ShardedDurability, BatchedResumeIsBitIdentical) {
  const MakeFn make = make_sharded(GetParam());
  const auto ids = testutil::make_id_stream(8000, 0.35, 2048, 34);
  const std::vector<std::uint64_t> times(ids.size(), 0);
  for (const std::size_t cp : {0u, 113u, 1017u, 4068u}) {
    check_checkpoint_equivalence_batched(make, ids, times, cp);
  }
}

TEST_P(ShardedDurability, TimedBatchResumeIsBitIdentical) {
  const auto mode = GetParam();
  const MakeFn make = [mode] {
    core::ShardedDetector::Options opts;
    opts.engine = mode;
    opts.threads = 2;
    return std::make_unique<core::ShardedDetector>(
        4,
        [](std::size_t) {
          core::TimingBloomFilter::Options o;
          o.entries = 1 << 12;
          o.hash_count = 5;
          o.seed = 25;
          return std::make_unique<core::TimingBloomFilter>(
              WindowSpec::sliding_time(300'000, 10'000), o);
        },
        opts);
  };
  const auto ids = testutil::make_id_stream(6000, 0.35, 1024, 35);
  const auto times = monotone_times(ids.size(), 300, 19);
  for (const std::size_t cp : {226u, 3051u}) {
    check_checkpoint_equivalence_batched(make, ids, times, cp);
  }
}

// kAuto resolves via PPC_ENGINE_DEFAULT — this test is engine-sensitive
// and runs in both defaults through tools/check.sh.
INSTANTIATE_TEST_SUITE_P(
    Modes, ShardedDurability,
    ::testing::Values(core::ShardedDetector::EngineMode::kAuto,
                      core::ShardedDetector::EngineMode::kMutex,
                      core::ShardedDetector::EngineMode::kSpscOwner));

// --- 4. DetectorPool ------------------------------------------------------

TEST(PoolDurability, MultiAdTimedBatchesResumeBitIdentical) {
  const adnet::DetectorPool::Factory factory = [](std::uint32_t) {
    core::TimingBloomFilter::Options o;
    o.entries = 1 << 12;
    o.hash_count = 5;
    o.seed = 26;
    return std::make_unique<core::TimingBloomFilter>(
        WindowSpec::sliding_time(300'000, 10'000), o);
  };
  const auto ids = testutil::make_id_stream(6000, 0.35, 512, 36);
  const auto times = monotone_times(ids.size(), 250, 29);
  std::vector<std::uint32_t> ads(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ads[i] = static_cast<std::uint32_t>(ids[i] % 5);  // 5 interleaved ads
  }

  constexpr std::size_t kChunk = 113;
  constexpr std::size_t kCheckpoint = 3051;
  adnet::DetectorPool reference(factory);
  adnet::DetectorPool live(factory);
  std::optional<adnet::DetectorPool> resumed;  // pool is non-movable
  std::vector<char> ref_out(kChunk), live_out(kChunk);
  for (std::size_t start = 0; start < ids.size(); start += kChunk) {
    if (start >= kCheckpoint && !resumed) {
      std::stringstream buffer;
      live.save(buffer);
      resumed.emplace(factory);
      resumed->restore(buffer);
    }
    const std::size_t n = std::min(kChunk, ids.size() - start);
    const std::span<bool> ref_span(reinterpret_cast<bool*>(ref_out.data()), n);
    const std::span<bool> live_span(reinterpret_cast<bool*>(live_out.data()),
                                    n);
    const std::span<const std::uint32_t> ad_chunk(&ads[start], n);
    const std::span<const ClickId> id_chunk(&ids[start], n);
    const std::span<const std::uint64_t> time_chunk(&times[start], n);
    reference.offer_batch(ad_chunk, id_chunk, time_chunk, ref_span);
    adnet::DetectorPool& p = resumed ? *resumed : live;
    p.offer_batch(ad_chunk, id_chunk, time_chunk, live_span);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(live_span[i], ref_span[i]) << "diverged at " << start + i;
    }
  }
}

// --- 5. full daemon: drain → snapshot file → restart → replay -------------

std::vector<server::wire::ClickRecord> make_clicks(std::uint32_t ad_id,
                                                   std::size_t count,
                                                   std::uint64_t seed) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = seed;
  opts.user_count = 400;  // small population → plenty of duplicates
  stream::MixedTrafficStream gen(opts);
  std::vector<server::wire::ClickRecord> clicks(count);
  for (auto& rec : clicks) {
    stream::Click c = gen.next();
    c.ad_id = ad_id;
    rec = {c.ad_id, stream::click_identifier(c), c.time_us};
  }
  return clicks;
}

/// Lock-step send of `clicks`; appends verdict bits to `out`.
void send_and_collect(server::BlockingClient& client,
                      std::span<const server::wire::ClickRecord> clicks,
                      std::vector<bool>& out) {
  constexpr std::size_t kBatch = 512;
  std::uint64_t seq = 0;
  std::size_t sent = 0;
  while (sent < clicks.size()) {
    const std::size_t n = std::min(kBatch, clicks.size() - sent);
    client.send_click_batch(seq, clicks.subspan(sent, n));
    sent += n;
    server::wire::FrameView frame;
    ASSERT_TRUE(client.read_frame(frame));
    ASSERT_EQ(frame.type, server::wire::FrameType::kVerdictBatch);
    server::wire::VerdictBatchView view;
    std::string err;
    ASSERT_TRUE(server::wire::parse_verdict_batch(frame.payload, view, err))
        << err;
    ASSERT_EQ(view.seq, seq);
    for (std::uint32_t i = 0; i < view.count; ++i) {
      out.push_back(view.duplicate(i));
    }
    ++seq;
  }
}

/// One server lifetime: serve `clicks` over loopback through `sink`, stop,
/// drain (writing `snapshot_path` if non-empty), append verdicts to `out`.
void serve_phase(server::ClickSink& sink,
                 std::span<const server::wire::ClickRecord> clicks,
                 const std::string& snapshot_path, std::vector<bool>& out) {
  server::IngestServer::Options opts;
  opts.snapshot_path = snapshot_path;
  server::IngestServer srv(sink, opts);
  const std::uint16_t port = srv.listen("127.0.0.1", 0);
  std::thread loop([&] { srv.run(); });
  {
    server::BlockingClient client;
    client.connect("127.0.0.1", port);
    client.handshake();
    send_and_collect(client, clicks, out);
  }
  srv.stop();
  loop.join();
  srv.drain();
}

TEST(DaemonDurability, ShardedSinkDrainRestartRestoreMatchesOracle) {
  server::DetectorConfig cfg;
  cfg.window = WindowSpec::jumping_count(4096, 8);
  cfg.memory_bits = std::uint64_t{1} << 18;
  cfg.shards = 4;
  cfg.owners = 2;  // kAuto: engine-sensitive, runs in both defaults
  const auto clicks = make_clicks(1, 16'000, 41);
  const std::size_t half = clicks.size() / 2;
  const std::string path = ::testing::TempDir() + "/sharded_drain.snap";

  std::vector<bool> verdicts;
  {
    auto detector = server::build_detector(cfg);
    server::DetectorSink sink(*detector);
    serve_phase(sink, std::span(clicks).first(half), path, verdicts);
  }  // first daemon gone; only the snapshot file survives
  {
    auto detector = server::build_detector(cfg);
    server::DetectorSink sink(*detector);
    server::IngestServer::restore_sink_snapshot(sink, path);
    serve_phase(sink, std::span(clicks).subspan(half), "", verdicts);
  }
  ASSERT_EQ(verdicts.size(), clicks.size());

  // Single-process oracle that never restarted.
  auto oracle = server::build_detector(cfg);
  for (std::size_t i = 0; i < clicks.size(); ++i) {
    ASSERT_EQ(verdicts[i], oracle->offer(clicks[i].click_id, clicks[i].t_us))
        << "diverged at click " << i;
  }
}

TEST(DaemonDurability, PoolSinkDrainRestartRestoreMatchesOracle) {
  server::DetectorConfig cfg;
  cfg.window = WindowSpec::sliding_time(2'000'000, 10'000);  // → TBF per ad
  cfg.memory_bits = std::uint64_t{1} << 16;
  const std::string path = ::testing::TempDir() + "/pool_drain.snap";

  // Three ads, interleaved round-robin so both halves touch every ad.
  std::vector<server::wire::ClickRecord> clicks;
  {
    const auto a = make_clicks(1, 4000, 42);
    const auto b = make_clicks(2, 4000, 43);
    const auto c = make_clicks(3, 4000, 44);
    for (std::size_t i = 0; i < 4000; ++i) {
      clicks.push_back(a[i]);
      clicks.push_back(b[i]);
      clicks.push_back(c[i]);
    }
  }
  const std::size_t half = clicks.size() / 2;

  const auto make_pool = [&cfg] {
    return adnet::DetectorPool(
        [cfg](std::uint32_t) { return server::build_detector(cfg); });
  };
  std::vector<bool> verdicts;
  {
    adnet::DetectorPool pool = make_pool();
    server::PoolSink sink(pool);
    serve_phase(sink, std::span(clicks).first(half), path, verdicts);
  }
  {
    adnet::DetectorPool pool = make_pool();
    server::PoolSink sink(pool);
    server::IngestServer::restore_sink_snapshot(sink, path);
    serve_phase(sink, std::span(clicks).subspan(half), "", verdicts);
  }
  ASSERT_EQ(verdicts.size(), clicks.size());

  // Per-ad oracle: each ad's subsequence replayed through its own detector,
  // exactly what the pool does internally.
  adnet::DetectorPool oracle = make_pool();
  for (std::size_t i = 0; i < clicks.size(); ++i) {
    ASSERT_EQ(verdicts[i],
              oracle.offer(clicks[i].ad_id, clicks[i].click_id,
                           clicks[i].t_us))
        << "diverged at click " << i;
  }
}

// A multi-loop daemon must drain to the SAME snapshot a single-loop daemon
// writes for the same click sequence: the cross-loop quiesce flushes every
// loop before the one snapshot is taken, so loop count is invisible to
// durability. Clients run sequentially (one at a time) so both runs feed
// each ad's detector the identical click order regardless of which loop
// accepts which connection.
TEST(DaemonDurability, MultiLoopDrainSnapshotBitIdenticalToSingleLoop) {
  server::DetectorConfig cfg;
  cfg.window = WindowSpec::jumping_count(4096, 8);
  cfg.memory_bits = std::uint64_t{1} << 18;
  constexpr std::size_t kAds = 3;
  constexpr std::size_t kPerAd = 4'000;
  std::vector<std::vector<server::wire::ClickRecord>> streams(kAds);
  for (std::size_t a = 0; a < kAds; ++a) {
    streams[a] = make_clicks(static_cast<std::uint32_t>(a + 1), kPerAd,
                             80 + a);
  }
  const std::size_t half = kPerAd / 2;

  const auto make_pool = [&cfg] {
    return adnet::DetectorPool(
        [cfg](std::uint32_t) { return server::build_detector(cfg); });
  };
  // Serve each ad's sub-stream on its own SEQUENTIAL connection.
  const auto serve_streams = [&](server::ClickSink& sink, std::size_t loops,
                                 bool first_half, const std::string& snap,
                                 std::vector<std::vector<bool>>& out) {
    server::IngestServer::Options opts;
    opts.snapshot_path = snap;
    opts.loops = loops;
    server::IngestServer srv(sink, opts);
    const std::uint16_t port = srv.listen("127.0.0.1", 0);
    std::thread loop([&] { srv.run(); });
    for (std::size_t a = 0; a < kAds; ++a) {
      server::BlockingClient client;
      client.connect("127.0.0.1", port);
      client.handshake();
      const std::span<const server::wire::ClickRecord> part =
          first_half ? std::span(streams[a]).first(half)
                     : std::span(streams[a]).subspan(half);
      send_and_collect(client, part, out[a]);
    }
    srv.stop();
    loop.join();
    srv.drain();
  };
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream raw;
    raw << in.rdbuf();
    return raw.str();
  };

  const std::string snap1 = ::testing::TempDir() + "/loops1.snap";
  const std::string snap2 = ::testing::TempDir() + "/loops2.snap";
  std::vector<std::vector<bool>> got1(kAds), got2(kAds);
  {
    adnet::DetectorPool pool = make_pool();
    server::PoolSink sink(pool);
    serve_streams(sink, 1, /*first_half=*/true, snap1, got1);
  }
  {
    adnet::DetectorPool pool = make_pool();
    server::PoolSink sink(pool);
    serve_streams(sink, 2, /*first_half=*/true, snap2, got2);
  }
  for (std::size_t a = 0; a < kAds; ++a) {
    ASSERT_EQ(got1[a], got2[a]) << "phase-1 verdicts diverge for ad " << a;
  }
  const std::string bytes1 = slurp(snap1);
  const std::string bytes2 = slurp(snap2);
  ASSERT_FALSE(bytes1.empty());
  ASSERT_EQ(bytes1, bytes2)
      << "multi-loop drain produced a different snapshot";

  // Restore the multi-loop snapshot into a fresh multi-loop daemon for the
  // second half; concatenated verdicts must equal a per-ad oracle that
  // never restarted.
  {
    adnet::DetectorPool pool = make_pool();
    server::PoolSink sink(pool);
    server::IngestServer::restore_sink_snapshot(sink, snap2);
    serve_streams(sink, 2, /*first_half=*/false, "", got2);
  }
  for (std::size_t a = 0; a < kAds; ++a) {
    ASSERT_EQ(got2[a].size(), kPerAd);
    auto oracle = server::build_detector(cfg);
    for (std::size_t i = 0; i < kPerAd; ++i) {
      ASSERT_EQ(got2[a][i],
                oracle->offer(streams[a][i].click_id, streams[a][i].t_us))
          << "ad " << a << " diverged at click " << i;
    }
  }
}

// --- snapshot FILE envelope: atomicity + mutation fuzz --------------------

TEST(SnapshotFile, WriteIsAtomicAndTmpFileIsCleanedUp) {
  core::GroupBloomFilter::Options o;
  o.bits_per_subfilter = 1 << 10;
  o.hash_count = 3;
  o.seed = 27;
  core::GroupBloomFilter gbf(WindowSpec::jumping_count(64, 4), o);
  gbf.offer(5);
  server::DetectorSink sink(gbf);
  const std::string path = ::testing::TempDir() + "/atomic.snap";

  // Pre-existing snapshot survives a successful overwrite (rename, not
  // truncate-in-place) and the temp file never outlives the call.
  server::IngestServer::save_sink_snapshot(sink, path);
  gbf.offer(6);
  server::IngestServer::save_sink_snapshot(sink, path);
  EXPECT_NE(std::ifstream(path).peek(), std::ifstream::traits_type::eof());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  // An unwritable target throws and leaves no temp file behind.
  const std::string bad = ::testing::TempDir() + "/no_such_dir/x.snap";
  EXPECT_THROW(server::IngestServer::save_sink_snapshot(sink, bad),
               std::runtime_error);

  core::GroupBloomFilter fresh(WindowSpec::jumping_count(64, 4), o);
  server::DetectorSink fresh_sink(fresh);
  server::IngestServer::restore_sink_snapshot(fresh_sink, path);
  EXPECT_TRUE(fresh.offer(5));
  EXPECT_TRUE(fresh.offer(6));
}

TEST(SnapshotFileFuzz, EveryTruncationAndByteFlipRejected) {
  core::GroupBloomFilter::Options o;
  o.bits_per_subfilter = 1 << 10;
  o.hash_count = 3;
  o.seed = 28;
  core::GroupBloomFilter gbf(WindowSpec::jumping_count(64, 4), o);
  for (ClickId id = 0; id < 40; ++id) gbf.offer(id % 16);
  server::DetectorSink sink(gbf);
  const std::string path = ::testing::TempDir() + "/fuzz.snap";
  server::IngestServer::save_sink_snapshot(sink, path);

  std::ifstream in(path, std::ios::binary);
  std::stringstream raw;
  raw << in.rdbuf();
  const std::string bytes = raw.str();
  ASSERT_GT(bytes.size(), 32u);

  core::GroupBloomFilter target(WindowSpec::jumping_count(64, 4), o);
  server::DetectorSink target_sink(target);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream s(bytes.substr(0, len));
    EXPECT_THROW(server::IngestServer::restore_sink_snapshot(target_sink, s),
                 std::exception)
        << "length " << len;
  }
  for (const std::uint8_t delta : {0x01, 0x80, 0xff}) {
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
      std::stringstream s(mutated);
      EXPECT_THROW(
          server::IngestServer::restore_sink_snapshot(target_sink, s),
          std::exception)
          << "byte " << pos << " ^ " << int{delta};
    }
  }
  {  // trailing garbage after a VALID envelope is also refused
    std::stringstream s(bytes + "x");
    EXPECT_THROW(server::IngestServer::restore_sink_snapshot(target_sink, s),
                 std::runtime_error);
  }
  std::stringstream intact(bytes);
  EXPECT_NO_THROW(
      server::IngestServer::restore_sink_snapshot(target_sink, intact));
}

// --- 6. the ppcd binary ---------------------------------------------------

std::string ppcd_bin() { return PPCD_BIN; }

struct RunResult {
  int exit_code;
  std::string output;
};

RunResult run_cmd(const std::string& cmd) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    output += buf.data();
  }
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

/// Starts ppcd in the background, waits until it reports readiness
/// ("listening on" — printed after any --restore), then delivers SIGTERM
/// and returns the full captured output. Readiness-driven rather than a
/// fixed sleep: sanitizer builds can take seconds just to reach main.
RunResult run_ppcd_until_listening_then_term(const std::string& flags,
                                             const std::string& log) {
  return run_cmd(ppcd_bin() + flags + " > " + log + " 2>&1 & pid=$!;" +
                 " for i in $(seq 1 400); do" +
                 "   kill -0 $pid 2>/dev/null || break;" +
                 "   grep -q 'listening on' " + log + " 2>/dev/null && break;" +
                 "   sleep 0.05;" +
                 " done;" +
                 " kill -TERM $pid 2>/dev/null; wait $pid; cat " + log);
}

/// Writes a snapshot file exactly as a `ppcd --sink=sharded` daemon with
/// these flags would on drain.
std::string write_sharded_snapshot(const server::DetectorConfig& cfg,
                                   const std::string& name) {
  auto detector = server::build_detector(cfg);
  detector->offer(1);
  server::DetectorSink sink(*detector);
  const std::string path = ::testing::TempDir() + "/" + name;
  server::IngestServer::save_sink_snapshot(sink, path);
  return path;
}

server::DetectorConfig cli_cfg() {
  server::DetectorConfig cfg;
  cfg.window = server::parse_window_spec("jumping:512:4");
  cfg.memory_bits = std::uint64_t{1} << 23;  // --memory-mib=1
  cfg.shards = 2;
  return cfg;
}

const char* kCliFlags =
    " --listen=127.0.0.1:0 --sink=sharded --window=jumping:512:4"
    " --memory-mib=1 --shards=2";

// Failure-mode runs are wrapped in `timeout`: if a regression let the
// restore succeed, ppcd would serve forever and hang the suite instead of
// failing it.
TEST(PpcdCli, RestoreMissingFileFails) {
  const auto r = run_cmd("timeout 10 " + ppcd_bin() + kCliFlags +
                         " --restore=" + ::testing::TempDir() +
                         "/does_not_exist.snap");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST(PpcdCli, RestoreMismatchedWindowFailsNamingWindow) {
  const std::string path = write_sharded_snapshot(cli_cfg(), "cli_win.snap");
  const auto r = run_cmd("timeout 10 " + ppcd_bin() +
                         " --listen=127.0.0.1:0 --sink=sharded"
                         " --window=jumping:1024:4 --memory-mib=1 --shards=2"
                         " --restore=" + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("window"), std::string::npos) << r.output;
}

TEST(PpcdCli, RestoreMismatchedShardCountFailsNamingShards) {
  const std::string path = write_sharded_snapshot(cli_cfg(), "cli_shard.snap");
  const auto r = run_cmd("timeout 10 " + ppcd_bin() +
                         " --listen=127.0.0.1:0 --sink=sharded"
                         " --window=jumping:512:4 --memory-mib=1 --shards=4"
                         " --restore=" + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("shards"), std::string::npos) << r.output;
}

TEST(PpcdCli, RestoreShardedSnapshotIntoPoolSinkFails) {
  const std::string path = write_sharded_snapshot(cli_cfg(), "cli_kind.snap");
  const auto r = run_cmd("timeout 10 " + ppcd_bin() +
                         " --listen=127.0.0.1:0 --sink=pool"
                         " --window=jumping:512:4 --memory-mib=1"
                         " --restore=" + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("DetectorPool"), std::string::npos) << r.output;
}

TEST(PpcdCli, SigtermDrainWritesRestorableSnapshot) {
  const std::string snap = ::testing::TempDir() + "/cli_drain.snap";
  // SIGTERM once the daemon is up; ppcd drains gracefully, writing the
  // snapshot on the way out.
  const auto r = run_ppcd_until_listening_then_term(
      std::string(kCliFlags) + " --snapshot=" + snap,
      ::testing::TempDir() + "/cli_drain.log");
  EXPECT_NE(r.output.find("ppcd: drained"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("snapshot written to"), std::string::npos)
      << r.output;

  // The file restores into a matching config...
  auto detector = server::build_detector(cli_cfg());
  server::DetectorSink sink(*detector);
  EXPECT_NO_THROW(server::IngestServer::restore_sink_snapshot(sink, snap));

  // ...and a second daemon accepts it via --restore.
  const auto r2 = run_ppcd_until_listening_then_term(
      std::string(kCliFlags) + " --restore=" + snap,
      ::testing::TempDir() + "/cli_restore.log");
  EXPECT_NE(r2.output.find("restored window state"), std::string::npos)
      << r2.output;
}

// A --snapshot configuration over a backend with no snapshot format must be
// refused AT CONSTRUCTION, naming the backend — not discovered mid-drain
// after hours of ingest when save() finally throws.
TEST(Durability, SnapshotPathOverSnapshotlessBackendFailsUpFront) {
  baseline::LandmarkBloomDetector::Options o;
  o.bits = 1 << 12;
  o.hash_count = 4;
  baseline::LandmarkBloomDetector detector(core::WindowSpec::landmark_count(64),
                                           o);
  ASSERT_FALSE(detector.supports_snapshots());
  server::DetectorSink sink(detector);
  EXPECT_FALSE(sink.supports_snapshots());

  server::IngestServer::Options opts;
  opts.snapshot_path = "/tmp/ppc_never_written.snap";
  try {
    server::IngestServer srv(sink, opts);
    FAIL() << "IngestServer accepted --snapshot over a snapshot-less backend";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("does not support snapshots"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(sink.describe()), std::string::npos)
        << "error must name the backend: " << e.what();
  }

  // Without a snapshot path the same sink serves fine.
  server::IngestServer::Options plain;
  EXPECT_NO_THROW(server::IngestServer srv2(sink, plain));
}

}  // namespace
}  // namespace ppc
