// Parallel batched-ingestion equivalence: ShardedDetector::offer_batch at
// 1..8 threads must yield verdicts bit-identical to the sequential
// mutex-per-offer path (bucketization preserves within-shard order), for
// every algorithm the DetectorFactory can select; zero-false-negatives
// must hold end-to-end on an adversarial duplicate-heavy Zipf stream; and
// DetectorPool's batch route path must match its sequential path while
// being driven from pool worker threads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/validity_oracle.hpp"
#include "core/detector_factory.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/sharded_detector.hpp"
#include "core/timing_bloom_filter.hpp"
#include "adnet/detector_pool.hpp"
#include "detector_test_util.hpp"
#include "stream/zipf.hpp"

namespace ppc::core {
namespace {

constexpr std::size_t kShards = 8;

DetectorBudget test_budget() {
  DetectorBudget budget;
  budget.total_memory_bits = std::uint64_t{1} << 20;
  budget.hash_count = 5;
  budget.seed = 99;
  return budget;
}

/// Factory that sizes each shard's count window at N/shards (the header's
/// guidance) and builds the paper-recommended algorithm for the spec.
ShardedDetector::Factory factory_for(WindowSpec spec) {
  if (spec.basis == WindowBasis::kCount) spec.length /= kShards;
  return [spec](std::size_t) { return make_detector(spec, test_budget()); };
}

/// Every algorithm family the DetectorFactory dispatches to: GBF (landmark
/// and small-Q jumping), TBF (large-Q jumping and sliding).
std::vector<WindowSpec> factory_specs() {
  return {
      WindowSpec::landmark_count(4096),
      WindowSpec::jumping_count(4096, 8),     // GBF
      WindowSpec::jumping_count(4096, 256),   // large Q → TBF
      WindowSpec::sliding_count(4096),        // TBF
  };
}

TEST(ParallelBatch, MatchesSequentialForEveryFactoryDetector) {
  const auto ids = testutil::make_id_stream(20000, 0.35, 2048, 77);
  for (const WindowSpec& spec : factory_specs()) {
    // Sequential reference: the mutex-per-offer path, element at a time.
    ShardedDetector seq(kShards, factory_for(spec));
    std::vector<bool> expected(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      expected[i] = seq.offer(ids[i]);
    }

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ShardedDetector bat(kShards, factory_for(spec), {.threads = threads});
      EXPECT_EQ(bat.thread_count(), threads);
      std::vector<bool> got(ids.size());
      bool buf[509];
      for (std::size_t off = 0; off < ids.size(); off += 509) {
        const std::size_t n = std::min<std::size_t>(509, ids.size() - off);
        bat.offer_batch(std::span<const ClickId>(ids.data() + off, n),
                        std::span<bool>(buf, n));
        for (std::size_t j = 0; j < n; ++j) got[off + j] = buf[j];
      }
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << spec.describe() << " threads=" << threads << " diverged at "
            << i;
      }
    }
  }
}

TEST(ParallelBatch, MatchesSequentialWithBlockedProbing) {
  // The cache-line-blocked GBF shares the batched fast path's single-lane
  // loop but takes the one-prefetch-per-element branch; verdict equivalence
  // must hold there too.
  const auto make = [] {
    return [](std::size_t) {
      GroupBloomFilter::Options opts;
      opts.bits_per_subfilter = 1 << 14;
      opts.hash_count = 7;
      opts.strategy = hashing::IndexStrategy::kCacheLineBlocked;
      return std::make_unique<GroupBloomFilter>(
          WindowSpec::jumping_count(4096 / kShards, 8), opts);
    };
  };
  const auto ids = testutil::make_id_stream(20000, 0.35, 2048, 80);

  ShardedDetector seq(kShards, make());
  std::vector<bool> expected(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) expected[i] = seq.offer(ids[i]);

  for (const std::size_t threads : {1u, 4u}) {
    ShardedDetector bat(kShards, make(), {.threads = threads});
    bool buf[509];
    for (std::size_t off = 0; off < ids.size(); off += 509) {
      const std::size_t n = std::min<std::size_t>(509, ids.size() - off);
      bat.offer_batch(std::span<const ClickId>(ids.data() + off, n),
                      std::span<bool>(buf, n));
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(buf[j], expected[off + j])
            << "threads=" << threads << " diverged at " << (off + j);
      }
    }
  }
}

TEST(ParallelBatch, MatchesSequentialWithTimeBasedWindows) {
  // Time-based windows shard exactly; a batch shares one timestamp, so the
  // sequential reference replays each element with its batch's timestamp.
  const auto make = [] {
    return factory_for(WindowSpec::sliding_time(5'000'000, 10'000));
  };
  const auto ids = testutil::make_id_stream(12000, 0.4, 1024, 78);
  constexpr std::size_t kBatchLen = 256;
  const auto time_of_batch = [](std::size_t batch) {
    return 20'000 * static_cast<std::uint64_t>(batch);
  };

  ShardedDetector seq(kShards, make());
  std::vector<bool> expected(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    expected[i] = seq.offer(ids[i], time_of_batch(i / kBatchLen));
  }

  ShardedDetector bat(kShards, make(), {.threads = 4});
  bool buf[kBatchLen];
  for (std::size_t off = 0; off < ids.size(); off += kBatchLen) {
    const std::size_t n = std::min(kBatchLen, ids.size() - off);
    bat.offer_batch(std::span<const ClickId>(ids.data() + off, n),
                    std::span<bool>(buf, n), time_of_batch(off / kBatchLen));
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(buf[j], expected[off + j]) << "diverged at " << (off + j);
    }
  }
}

TEST(ParallelBatch, ZeroFalseNegativesOnAdversarialZipfStream) {
  // Duplicate-heavy Zipf traffic (a botnet hammering the popular ids)
  // through the full parallel batch path; time-based windows shard
  // exactly, so Theorem 2's zero-FN guarantee must survive end-to-end.
  constexpr std::uint64_t kUnitUs = 10'000;
  constexpr std::uint64_t kSpanUs = 1'000 * kUnitUs;
  const auto factory = [](std::size_t) {
    TimingBloomFilter::Options opts;
    opts.entries = 1 << 16;
    opts.hash_count = 5;
    return std::make_unique<TimingBloomFilter>(
        WindowSpec::sliding_time(kSpanUs, kUnitUs), opts);
  };
  ShardedDetector sketch(kShards, factory, {.threads = 8});
  ASSERT_TRUE(sketch.zero_false_negatives());

  stream::Rng rng(41);
  const stream::ZipfSampler zipf(4000, 1.2);
  std::vector<std::uint64_t> ids(30'000);
  for (auto& id : ids) id = zipf.sample(rng);

  analysis::TimeSlidingOracle oracle(1'000, kUnitUs);
  analysis::ConfusionCounts counts;
  constexpr std::size_t kBatchLen = 128;
  bool buf[kBatchLen];
  for (std::size_t off = 0; off < ids.size(); off += kBatchLen) {
    const std::size_t n = std::min(kBatchLen, ids.size() - off);
    const std::uint64_t t = 25'000 * (off / kBatchLen);
    sketch.offer_batch(std::span<const ClickId>(ids.data() + off, n),
                       std::span<bool>(buf, n), t);
    for (std::size_t j = 0; j < n; ++j) {
      oracle.advance(t);
      const bool truth = oracle.contains_valid(ids[off + j]);
      counts.record(buf[j], truth);
      oracle.record(ids[off + j], /*validated=*/!buf[j], t);
    }
  }
  EXPECT_EQ(counts.false_negative, 0u) << counts.summary();
  EXPECT_GT(counts.true_duplicate, 1000u);  // the stream really is adversarial
}

TEST(ParallelBatch, ShardedRejectsZeroThreads) {
  EXPECT_THROW(ShardedDetector(
                   2, factory_for(WindowSpec::sliding_count(4096)),
                   {.threads = 0}),
               std::invalid_argument);
}

TEST(ParallelBatch, PerShardOpCountersAggregateWithoutRacing) {
  ShardedDetector d(4, factory_for(WindowSpec::jumping_count(4096, 8)),
                    {.threads = 4});
  OpCounter ops;
  d.set_op_counter(&ops);
  const auto ids = testutil::make_id_stream(4096, 0.3, 512, 79);
  std::vector<char> buf(ids.size());
  d.offer_batch(std::span<const ClickId>(ids.data(), ids.size()),
                std::span<bool>(reinterpret_cast<bool*>(buf.data()),
                                ids.size()));
  EXPECT_EQ(ops.total(), 0u);  // never written concurrently...
  const OpCounter totals = d.op_totals();
  EXPECT_GT(totals.total(), 0u);  // ...folded on demand instead
  EXPECT_EQ(ops.total(), totals.total());
  d.reset();
  EXPECT_EQ(d.op_totals().total(), 0u);
}

}  // namespace
}  // namespace ppc::core

namespace ppc::adnet {
namespace {

std::unique_ptr<core::DuplicateDetector> per_ad_tbf(std::uint32_t) {
  core::TimingBloomFilter::Options opts;
  opts.entries = 1 << 14;
  opts.hash_count = 5;
  return std::make_unique<core::TimingBloomFilter>(
      core::WindowSpec::sliding_count(512), opts);
}

TEST(DetectorPoolBatch, MatchesSequentialRoutingAcrossWorkerThreads) {
  const std::size_t n = 10'000;
  stream::Rng rng(91);
  std::vector<std::uint32_t> ad_ids(n);
  std::vector<core::ClickId> ids(n);
  const auto id_pool = testutil::make_id_stream(n, 0.5, 256, 92);
  for (std::size_t i = 0; i < n; ++i) {
    ad_ids[i] = static_cast<std::uint32_t>(rng.below(24));
    ids[i] = id_pool[i];
  }

  DetectorPool sequential(per_ad_tbf);
  std::vector<bool> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = sequential.offer(ad_ids[i], ids[i], 0);
  }

  for (const std::size_t threads : {1u, 4u}) {
    DetectorPool batched(per_ad_tbf);
    runtime::ThreadPool pool(threads);
    std::vector<char> out(n);
    constexpr std::size_t kBatchLen = 777;
    for (std::size_t off = 0; off < n; off += kBatchLen) {
      const std::size_t len = std::min(kBatchLen, n - off);
      batched.offer_batch(
          std::span<const std::uint32_t>(ad_ids.data() + off, len),
          std::span<const core::ClickId>(ids.data() + off, len),
          std::span<bool>(reinterpret_cast<bool*>(out.data()) + off, len),
          /*time_us=*/0, &pool);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i] != 0, expected[i])
          << "threads=" << threads << " diverged at " << i;
    }
    EXPECT_EQ(batched.size(), sequential.size());
    EXPECT_EQ(batched.memory_bits(), sequential.memory_bits());
  }
}

TEST(DetectorPoolBatch, RejectsMismatchedSpans) {
  DetectorPool pool(per_ad_tbf);
  const std::uint32_t ads[] = {1, 2};
  const core::ClickId ids[] = {10, 11};
  bool out[1];
  EXPECT_THROW(pool.offer_batch(std::span<const std::uint32_t>(ads, 1),
                                std::span<const core::ClickId>(ids, 2),
                                std::span<bool>(out, 1)),
               std::invalid_argument);
  EXPECT_THROW(pool.offer_batch(std::span<const std::uint32_t>(ads, 2),
                                std::span<const core::ClickId>(ids, 2),
                                std::span<bool>(out, 1)),
               std::invalid_argument);
}

TEST(DetectorPoolBatch, EmptyBatchIsANoOp) {
  DetectorPool pool(per_ad_tbf);
  pool.offer_batch({}, {}, {});
  EXPECT_EQ(pool.size(), 0u);
}

}  // namespace
}  // namespace ppc::adnet
