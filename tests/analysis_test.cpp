// Tests for the analysis substrate: theoretical FP formulas, the
// confusion-matrix metrics, and theory-vs-measurement agreement (the core
// statistical claim behind Figures 2a/2b).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "analysis/theory.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/timing_bloom_filter.hpp"

namespace ppc::analysis {
namespace {

TEST(Theory, BloomFprBasicShape) {
  EXPECT_DOUBLE_EQ(bloom_fpr(1000, 0, 5), 0.0);
  EXPECT_GT(bloom_fpr(1000, 100, 5), 0.0);
  EXPECT_LT(bloom_fpr(1000, 100, 5), 1.0);
  // More elements → more false positives.
  EXPECT_LT(bloom_fpr(1 << 20, 1 << 15, 7), bloom_fpr(1 << 20, 1 << 18, 7));
  // More memory → fewer false positives.
  EXPECT_GT(bloom_fpr(1 << 18, 1 << 15, 7), bloom_fpr(1 << 22, 1 << 15, 7));
}

TEST(Theory, ExactMatchesApproxAtScale) {
  const double exact = bloom_fpr(1 << 20, 1 << 17, 5);
  const double approx = bloom_fpr_approx(1 << 20, 1 << 17, 5);
  EXPECT_NEAR(exact, approx, 1e-4);
}

TEST(Theory, OptimalKMinimizesFpr) {
  const double m = 1 << 16;
  const double n = 1 << 12;
  const std::size_t k_opt = optimal_k(m, n);
  EXPECT_EQ(k_opt, 11u);  // ln2 · 16 ≈ 11.09
  const double best = bloom_fpr(m, n, k_opt);
  EXPECT_LE(best, bloom_fpr(m, n, k_opt - 3));
  EXPECT_LE(best, bloom_fpr(m, n, k_opt + 3));
}

TEST(Theory, OptimalKClamps) {
  EXPECT_EQ(optimal_k(100, 1'000'000), 1u);
  EXPECT_EQ(optimal_k(1e12, 1), 64u);
}

TEST(Theory, GbfBeatsSingleFilterHoldingWholeWindow) {
  // The crux of Figure 1: splitting N over Q sub-filters of the same size m
  // yields far fewer false positives than one m-filter holding all N.
  const double m = 1 << 20;
  const double n = 1 << 20;
  // At k=1 the two coincide (Q filters with n/Q each ≈ one filter with n);
  // the GBF advantage appears for k ≥ 2 and grows with k.
  EXPECT_NEAR(gbf_fpr_upper(m, n, 31, 1), metwally_main_fpr(m, n, 1), 1e-3);
  for (std::size_t k : {2u, 4u, 8u}) {
    EXPECT_LT(gbf_fpr_upper(m, n, 31, k), 0.5 * metwally_main_fpr(m, n, k))
        << "k=" << k;
  }
}

TEST(Theory, GbfMeanBelowUpper) {
  const double m = 1 << 18;
  EXPECT_LE(gbf_fpr_mean(m, 1 << 17, 8, 5), gbf_fpr_upper(m, 1 << 17, 8, 5));
}

TEST(Theory, PaperFigure2aEndpoint) {
  // §5: N=2^20, Q=8, m=1,876,246, k=10 → FP ≈ 0.01.
  const double f = gbf_fpr_upper(1'876'246, 1 << 20, 8, 10);
  EXPECT_GT(f, 0.004);
  EXPECT_LT(f, 0.02);
}

TEST(Theory, PaperFigure2bEndpoint) {
  // §5: N=2^20, m=15,112,980 entries, k=10 → FP ≈ 0.001.
  const double f = tbf_fpr(15'112'980, 1 << 20, 10);
  EXPECT_GT(f, 0.0005);
  EXPECT_LT(f, 0.002);
}

TEST(Theory, TbfEntryBits) {
  // N=2^20, C=N-1 → wrap=2N-1 → 21 bits (paper §4.2: O(log N) per entry).
  EXPECT_EQ(tbf_entry_bits(1 << 20, (1 << 20) - 1), 21u);
  EXPECT_EQ(tbf_entry_bits(1 << 10, 1), 11u);  // 1025 codes → 11 bits
  EXPECT_EQ(tbf_entry_bits(3, 1), 3u);         // 5 codes → 3 bits
}

TEST(Theory, MemoryAccounting) {
  EXPECT_DOUBLE_EQ(gbf_memory_bits(1000, 7), 8000.0);
  EXPECT_DOUBLE_EQ(metwally_memory_bits(1000, 4, 4, 8), 1000.0 * 24);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, RecordAndRates) {
  ConfusionCounts c;
  c.record(true, true);    // TP
  c.record(true, false);   // FP
  c.record(false, true);   // FN
  c.record(false, false);  // TN
  c.record(false, false);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.5);
  ConfusionCounts d;
  d += c;
  d += c;
  EXPECT_EQ(d.total(), 10u);
}

TEST(Metrics, EmptyRatesAreZero) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.0);
}

TEST(Metrics, SummaryMentionsCounts) {
  ConfusionCounts c;
  c.record(true, false);
  EXPECT_NE(c.summary().find("fp=1"), std::string::npos);
}

// --------------------------------------------- theory matches experiment

TEST(TheoryVsExperiment, GbfFprWithinStatisticalTolerance) {
  // Scaled-down Figure 2(a): N=2^14, Q=8, m scaled by the same N ratio.
  constexpr std::uint64_t kN = 1 << 14;
  constexpr std::uint32_t kQ = 8;
  const std::uint64_t m = 1'876'246 / 64;  // keep k·n/m as in the paper
  constexpr std::size_t kK = 5;

  core::GroupBloomFilter::Options opts;
  opts.bits_per_subfilter = m;
  opts.hash_count = kK;
  core::GroupBloomFilter gbf(core::WindowSpec::jumping_count(kN, kQ), opts);

  DistinctRunConfig cfg{20 * kN, 10 * kN, 3};
  const double measured = measure_fpr_distinct(gbf, cfg);
  const double upper = gbf_fpr_upper(m, kN, kQ, kK);
  const double mean = gbf_fpr_mean(m, kN, kQ, kK);
  // Measured should sit near the mean prediction and below the upper bound
  // (plus sampling slack).
  EXPECT_LT(measured, upper * 1.3 + 1e-4);
  EXPECT_NEAR(measured, mean, mean * 0.5 + 1e-4);
}

TEST(TheoryVsExperiment, TbfFprWithinStatisticalTolerance) {
  constexpr std::uint64_t kN = 1 << 14;
  const std::uint64_t m = 15'112'980 / 64;
  constexpr std::size_t kK = 5;

  core::TimingBloomFilter::Options opts;
  opts.entries = m;
  opts.hash_count = kK;
  core::TimingBloomFilter tbf(core::WindowSpec::sliding_count(kN), opts);

  DistinctRunConfig cfg{20 * kN, 10 * kN, 4};
  const double measured = measure_fpr_distinct(tbf, cfg);
  const double predicted = tbf_fpr(static_cast<double>(m), kN, kK);
  EXPECT_NEAR(measured, predicted, predicted * 0.5 + 1e-4);
}

}  // namespace
}  // namespace ppc::analysis
