// Tests for detector snapshotting: a reloaded detector must be verdict-
// for-verdict identical to one that never stopped, for both algorithms,
// both window bases, and at arbitrary checkpoints (including mid-cleaning
// and mid-sub-window).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "adnet/detector_pool.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/sharded_detector.hpp"
#include "core/snapshot_io.hpp"
#include "core/timing_bloom_filter.hpp"
#include "detector_test_util.hpp"

namespace ppc::core {
namespace {

GroupBloomFilter::Options gbf_opts() {
  GroupBloomFilter::Options o;
  o.bits_per_subfilter = 1 << 14;
  o.hash_count = 5;
  o.seed = 9;
  return o;
}

TimingBloomFilter::Options tbf_opts() {
  TimingBloomFilter::Options o;
  o.entries = 1 << 14;
  o.hash_count = 5;
  o.seed = 9;
  return o;
}

struct CheckpointCase {
  std::uint64_t checkpoint_at;
};

class GbfSnapshotTest : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(GbfSnapshotTest, ResumesIdenticallyAfterReload) {
  const auto w = WindowSpec::jumping_count(512, 4);
  GroupBloomFilter reference(w, gbf_opts());
  GroupBloomFilter live(w, gbf_opts());
  const auto ids = testutil::make_id_stream(8000, 0.3, 1024, 77);

  std::unique_ptr<GroupBloomFilter> resumed;
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    if (i == GetParam().checkpoint_at) {
      std::stringstream buffer;
      live.save(buffer);
      resumed = GroupBloomFilter::load(buffer);
    }
    const bool expected = reference.offer(ids[i]);
    DuplicateDetector& d = resumed ? *resumed : live;
    ASSERT_EQ(d.offer(ids[i]), expected) << "diverged at arrival " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Checkpoints, GbfSnapshotTest,
    ::testing::Values(CheckpointCase{0},     // before any arrival
                      CheckpointCase{1},     // right after the first
                      CheckpointCase{511},   // just before a jump
                      CheckpointCase{512},   // right at a jump
                      CheckpointCase{1300},  // mid-sub-window, mid-cleaning
                      CheckpointCase{4096}));

class TbfSnapshotTest : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(TbfSnapshotTest, ResumesIdenticallyAfterReload) {
  const auto w = WindowSpec::sliding_count(512);
  TimingBloomFilter reference(w, tbf_opts());
  TimingBloomFilter live(w, tbf_opts());
  const auto ids = testutil::make_id_stream(8000, 0.3, 1024, 78);

  std::unique_ptr<TimingBloomFilter> resumed;
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    if (i == GetParam().checkpoint_at) {
      std::stringstream buffer;
      live.save(buffer);
      resumed = TimingBloomFilter::load(buffer);
    }
    const bool expected = reference.offer(ids[i]);
    DuplicateDetector& d = resumed ? *resumed : live;
    ASSERT_EQ(d.offer(ids[i]), expected) << "diverged at arrival " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Checkpoints, TbfSnapshotTest,
    ::testing::Values(CheckpointCase{0}, CheckpointCase{1},
                      CheckpointCase{511}, CheckpointCase{512},
                      CheckpointCase{1023},  // wraparound boundary region
                      CheckpointCase{4096}));

TEST(TbfSnapshot, TimeBasedStateSurvives) {
  const auto w = WindowSpec::sliding_time(1'000'000, 10'000);
  TimingBloomFilter live(w, tbf_opts());
  live.offer(5, 100'000);
  live.offer(6, 200'000);

  std::stringstream buffer;
  live.save(buffer);
  auto resumed = TimingBloomFilter::load(buffer);

  // In-window duplicates still flagged, expiry clock still correct.
  EXPECT_TRUE(resumed->offer(5, 300'000));
  EXPECT_FALSE(resumed->offer(5, 5'000'000));
}

TEST(GbfSnapshot, TimeBasedStateSurvives) {
  const auto w = WindowSpec::jumping_time(1'000'000, 4, 10'000);
  GroupBloomFilter live(w, gbf_opts());
  live.offer(5, 100'000);

  std::stringstream buffer;
  live.save(buffer);
  auto resumed = GroupBloomFilter::load(buffer);
  EXPECT_TRUE(resumed->offer(5, 300'000));
  EXPECT_FALSE(resumed->offer(5, 10'000'000));
}

TEST(Snapshot, RejectsGarbageAndWrongMagic) {
  std::stringstream garbage("this is not a snapshot at all, sorry");
  EXPECT_THROW(TimingBloomFilter::load(garbage), std::runtime_error);

  // A GBF snapshot is not a TBF snapshot.
  GroupBloomFilter gbf(WindowSpec::jumping_count(64, 2), gbf_opts());
  std::stringstream buffer;
  gbf.save(buffer);
  EXPECT_THROW(TimingBloomFilter::load(buffer), std::runtime_error);
}

// A corrupt word-count header must surface as runtime_error BEFORE any
// allocation is attempted — not as a multi-GiB std::vector resize (or
// bad_alloc / OOM-kill) followed by EOF. The TBF layout puts the word
// count at a fixed offset: magic + 5 window fields + 5 option fields +
// 5 state fields = 16 u64s = 128 bytes.
TEST(Snapshot, RejectsForgedWordCountHeader) {
  TimingBloomFilter tbf(WindowSpec::sliding_count(64), tbf_opts());
  tbf.offer(42);
  std::stringstream buffer;
  tbf.save(buffer);
  std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 136u);

  constexpr std::size_t kWordCountOffset = 128;
  // Absurd count (fails the absolute cap).
  std::string forged = bytes;
  const std::uint64_t huge = ~std::uint64_t{0} >> 3;
  std::memcpy(forged.data() + kWordCountOffset, &huge, 8);
  std::stringstream forged_in(forged);
  EXPECT_THROW(TimingBloomFilter::load(forged_in), std::runtime_error);

  // Plausible-looking count that still exceeds the remaining bytes
  // (fails the remaining-stream bound).
  forged = bytes;
  const std::uint64_t oversize =
      (bytes.size() - kWordCountOffset) / 8 + 1000;
  std::memcpy(forged.data() + kWordCountOffset, &oversize, 8);
  std::stringstream oversize_in(forged);
  EXPECT_THROW(TimingBloomFilter::load(oversize_in), std::runtime_error);

  // Unchanged bytes still load — the forgery, not the check, is at fault.
  std::stringstream intact(bytes);
  EXPECT_NO_THROW(TimingBloomFilter::load(intact));
}

TEST(Snapshot, RejectsTruncatedInput) {
  TimingBloomFilter tbf(WindowSpec::sliding_count(64), tbf_opts());
  std::stringstream buffer;
  tbf.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(TimingBloomFilter::load(truncated), std::runtime_error);
}

TEST(Snapshot, InstanceRestoreRejectsMismatchedParameters) {
  const auto w = WindowSpec::jumping_count(512, 4);
  GroupBloomFilter saved(w, gbf_opts());
  saved.offer(1);
  std::stringstream buffer;
  saved.save(buffer);
  const std::string bytes = buffer.str();

  {  // different window length
    GroupBloomFilter other(WindowSpec::jumping_count(1024, 4), gbf_opts());
    std::stringstream in(bytes);
    EXPECT_THROW(other.restore(in), std::runtime_error);
  }
  {  // different filter sizing
    auto o = gbf_opts();
    o.bits_per_subfilter = 1 << 13;
    GroupBloomFilter other(w, o);
    std::stringstream in(bytes);
    EXPECT_THROW(other.restore(in), std::runtime_error);
  }
  {  // different seed — indices would be garbage even though sizes match
    auto o = gbf_opts();
    o.seed = 10;
    GroupBloomFilter other(w, o);
    std::stringstream in(bytes);
    EXPECT_THROW(other.restore(in), std::runtime_error);
  }
  {  // matching instance restores fine
    GroupBloomFilter other(w, gbf_opts());
    std::stringstream in(bytes);
    EXPECT_NO_THROW(other.restore(in));
    EXPECT_TRUE(other.offer(1));  // saved click visible after restore
  }
}

// ---------------------------------------------------------------------------
// Mutation fuzz of the composite (sectioned, CRC-checked) snapshot formats
// — ShardedDetector and DetectorPool — in the wire_fuzz_test.cpp style:
// every truncation point, every byte flipped with several deltas, forged
// counts with RECOMPUTED checksums, and trailing garbage must all throw
// (never crash, never silently accept).
// ---------------------------------------------------------------------------

/// Tiny sharded GBF so the full snapshot is ~1 KB and the per-byte fuzz
/// loops stay fast. `threads` > 1 + kSpscOwner exercises the engine path.
std::unique_ptr<ShardedDetector> make_tiny_sharded(
    std::size_t shards,
    ShardedDetector::EngineMode mode = ShardedDetector::EngineMode::kMutex,
    std::uint64_t window_len = 256, std::uint64_t seed = 9) {
  ShardedDetector::Options opts;
  opts.engine = mode;
  opts.threads = mode == ShardedDetector::EngineMode::kSpscOwner ? 2 : 1;
  return std::make_unique<ShardedDetector>(
      shards,
      [&](std::size_t) {
        GroupBloomFilter::Options o;
        o.bits_per_subfilter = 1 << 10;
        o.hash_count = 3;
        o.seed = seed;
        return std::make_unique<GroupBloomFilter>(
            WindowSpec::jumping_count(window_len / shards, 4), o);
      },
      opts);
}

std::string saved_bytes(DuplicateDetector& d) {
  std::stringstream buffer;
  d.save(buffer);
  return buffer.str();
}

TEST(ShardedSnapshotFuzz, EveryTruncationRejected) {
  auto sharded = make_tiny_sharded(2);
  const auto ids = testutil::make_id_stream(600, 0.3, 256, 5);
  for (const auto id : ids) sharded->offer(id);
  const std::string bytes = saved_bytes(*sharded);

  auto target = make_tiny_sharded(2);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream in(bytes.substr(0, len));
    EXPECT_THROW(target->restore(in), std::exception) << "length " << len;
  }
  std::stringstream intact(bytes);
  EXPECT_NO_THROW(target->restore(intact));
}

TEST(ShardedSnapshotFuzz, EveryByteFlipRejected) {
  auto sharded = make_tiny_sharded(2);
  const auto ids = testutil::make_id_stream(600, 0.3, 256, 6);
  for (const auto id : ids) sharded->offer(id);
  const std::string bytes = saved_bytes(*sharded);

  auto target = make_tiny_sharded(2);
  // Any single corrupted byte must be caught: the section header fields by
  // their explicit validation, the payload (shard headers, cursors, filter
  // words — all of it) by the CRC.
  for (const std::uint8_t delta : {0x01, 0x80, 0xff}) {
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
      std::stringstream in(mutated);
      EXPECT_THROW(target->restore(in), std::exception)
          << "byte " << pos << " ^ " << int{delta};
    }
  }
}

/// Re-wraps a forged payload with a VALID header + CRC, so only the
/// payload-level validation stands between the forgery and the filter.
std::string rewrap(std::uint64_t magic, const std::string& payload) {
  std::stringstream out;
  detail::write_section(out, magic, payload);
  return out.str();
}

/// Extracts the (already CRC-verified) payload from a saved section.
std::string unwrap(std::uint64_t magic, const std::string& bytes,
                   const char* what) {
  std::stringstream in(bytes);
  return detail::read_section(in, magic, what);
}

TEST(ShardedSnapshotFuzz, ForgedShardCountWithValidCrcRejected) {
  auto sharded = make_tiny_sharded(2);
  sharded->offer(1);
  std::string payload =
      unwrap(detail::kShardedMagic, saved_bytes(*sharded), "fuzz");

  auto target = make_tiny_sharded(2);
  for (const std::uint64_t forged_count : {0ull, 1ull, 3ull, 4096ull,
                                           ~0ull}) {
    std::string forged = payload;
    std::memcpy(forged.data(), &forged_count, 8);
    std::stringstream in(rewrap(detail::kShardedMagic, forged));
    EXPECT_THROW(target->restore(in), std::exception)
        << "count " << forged_count;
  }
}

TEST(ShardedSnapshotFuzz, TrailingPayloadGarbageRejected) {
  auto sharded = make_tiny_sharded(2);
  sharded->offer(1);
  std::string payload =
      unwrap(detail::kShardedMagic, saved_bytes(*sharded), "fuzz");
  payload += "extra";
  auto target = make_tiny_sharded(2);
  std::stringstream in(rewrap(detail::kShardedMagic, payload));
  EXPECT_THROW(target->restore(in), std::runtime_error);
}

TEST(ShardedSnapshotFuzz, RandomGarbageRejected) {
  auto target = make_tiny_sharded(2);
  std::uint64_t x = 0x243F6A8885A308D3ull;  // deterministic xorshift
  for (int round = 0; round < 64; ++round) {
    std::string garbage(64 + round * 17, '\0');
    for (auto& c : garbage) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      c = static_cast<char>(x);
    }
    std::stringstream in(garbage);
    EXPECT_THROW(target->restore(in), std::exception) << "round " << round;
  }
}

TEST(ShardedSnapshot, RejectsMismatchedInstanceOptions) {
  auto sharded = make_tiny_sharded(2);
  sharded->offer(1);
  const std::string bytes = saved_bytes(*sharded);

  {  // shard count mismatch names the dimension
    auto target = make_tiny_sharded(4);
    std::stringstream in(bytes);
    try {
      target->restore(in);
      FAIL() << "restore accepted a 2-shard snapshot into 4 shards";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("shards"), std::string::npos)
          << e.what();
    }
  }
  {  // window mismatch (different aggregate count length)
    auto target = make_tiny_sharded(2, ShardedDetector::EngineMode::kMutex,
                                    /*window_len=*/512);
    std::stringstream in(bytes);
    try {
      target->restore(in);
      FAIL() << "restore accepted a mismatched window";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("window"), std::string::npos)
          << e.what();
    }
  }
  {  // inner detector option mismatch (different seed) surfaces shard context
    auto target = make_tiny_sharded(2, ShardedDetector::EngineMode::kMutex,
                                    256, /*seed=*/10);
    std::stringstream in(bytes);
    try {
      target->restore(in);
      FAIL() << "restore accepted mismatched inner options";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("shard 0"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ShardedSnapshot, MutexSnapshotRestoresIntoEngineInstanceAndViceVersa) {
  // The engine flag is informational — verdicts are bit-identical across
  // modes, so a mutex-mode snapshot may seed an engine-mode instance.
  auto mutex_inst = make_tiny_sharded(2, ShardedDetector::EngineMode::kMutex);
  const auto ids = testutil::make_id_stream(400, 0.3, 128, 7);
  for (const auto id : ids) mutex_inst->offer(id);
  const std::string bytes = saved_bytes(*mutex_inst);

  auto engine_inst =
      make_tiny_sharded(2, ShardedDetector::EngineMode::kSpscOwner);
  std::stringstream in(bytes);
  ASSERT_NO_THROW(engine_inst->restore(in));
  for (std::size_t i = 0; i < 200; ++i) {
    const ClickId id = ids[i % ids.size()];
    ASSERT_EQ(engine_inst->offer(id), mutex_inst->offer(id)) << "click " << i;
  }

  const std::string engine_bytes = saved_bytes(*engine_inst);
  auto mutex_back = make_tiny_sharded(2, ShardedDetector::EngineMode::kMutex);
  std::stringstream back(engine_bytes);
  ASSERT_NO_THROW(mutex_back->restore(back));
}

// --- DetectorPool composite format --------------------------------------

adnet::DetectorPool make_tiny_pool(std::uint64_t seed = 9) {
  return adnet::DetectorPool([seed](std::uint32_t) {
    GroupBloomFilter::Options o;
    o.bits_per_subfilter = 1 << 10;
    o.hash_count = 3;
    o.seed = seed;
    return std::make_unique<GroupBloomFilter>(WindowSpec::jumping_count(64, 4),
                                              o);
  });
}

std::string saved_pool_bytes(adnet::DetectorPool& pool) {
  std::stringstream buffer;
  pool.save(buffer);
  return buffer.str();
}

TEST(PoolSnapshotFuzz, EveryTruncationAndByteFlipRejected) {
  adnet::DetectorPool pool = make_tiny_pool();
  for (std::uint32_t ad : {7u, 3u, 900u}) {
    for (std::uint64_t i = 0; i < 50; ++i) pool.offer(ad, i % 20, 0);
  }
  const std::string bytes = saved_pool_bytes(pool);

  adnet::DetectorPool target = make_tiny_pool();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream in(bytes.substr(0, len));
    EXPECT_THROW(target.restore(in), std::exception) << "length " << len;
  }
  for (const std::uint8_t delta : {0x01, 0x80, 0xff}) {
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
      std::stringstream in(mutated);
      EXPECT_THROW(target.restore(in), std::exception)
          << "byte " << pos << " ^ " << int{delta};
    }
  }
  std::stringstream intact(bytes);
  EXPECT_NO_THROW(target.restore(intact));
  EXPECT_EQ(target.size(), 3u);
}

TEST(PoolSnapshotFuzz, ForgedAdCountsWithValidCrcRejected) {
  adnet::DetectorPool pool = make_tiny_pool();
  pool.offer(7, 1, 0);
  pool.offer(9, 2, 0);
  const std::string payload =
      unwrap(detail::kPoolMagic, saved_pool_bytes(pool), "fuzz");

  // Count larger than the ads present → runs off the payload; count
  // smaller → trailing bytes; absurd → implausible-count guard.
  for (const std::uint64_t forged_count : {1ull, 3ull, 4096ull, ~0ull}) {
    std::string forged = payload;
    std::memcpy(forged.data(), &forged_count, 8);
    adnet::DetectorPool target = make_tiny_pool();
    std::stringstream in(rewrap(detail::kPoolMagic, forged));
    EXPECT_THROW(target.restore(in), std::exception)
        << "count " << forged_count;
  }
}

TEST(PoolSnapshotFuzz, OutOfOrderAdIdsRejected) {
  adnet::DetectorPool pool = make_tiny_pool();
  pool.offer(7, 1, 0);
  const std::string payload =
      unwrap(detail::kPoolMagic, saved_pool_bytes(pool), "fuzz");

  // Duplicate the single (ad, detector) record and bump the count to 2:
  // the second record's ad id (7 again) is not strictly ascending.
  std::string forged = payload;
  const std::uint64_t two = 2;
  std::memcpy(forged.data(), &two, 8);
  forged += payload.substr(8);
  adnet::DetectorPool target = make_tiny_pool();
  std::stringstream in(rewrap(detail::kPoolMagic, forged));
  try {
    target.restore(in);
    FAIL() << "restore accepted duplicate ad records";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("out of order"), std::string::npos)
        << e.what();
  }
}

TEST(PoolSnapshot, RoundTripPreservesEveryAdsWindow) {
  adnet::DetectorPool pool = make_tiny_pool();
  const auto ids = testutil::make_id_stream(900, 0.4, 64, 8);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    pool.offer(static_cast<std::uint32_t>(i % 3), ids[i], 0);
  }
  const std::string bytes = saved_pool_bytes(pool);

  adnet::DetectorPool resumed = make_tiny_pool();
  std::stringstream in(bytes);
  resumed.restore(in);
  ASSERT_EQ(resumed.size(), pool.size());
  ASSERT_EQ(resumed.memory_bits(), pool.memory_bits());
  for (std::size_t i = 0; i < 300; ++i) {
    const auto ad = static_cast<std::uint32_t>(i % 3);
    const ClickId id = ids[i];
    ASSERT_EQ(resumed.offer(ad, id, 0), pool.offer(ad, id, 0))
        << "click " << i;
  }
}

TEST(PoolSnapshot, RestoreEnforcesMemoryCap) {
  adnet::DetectorPool pool = make_tiny_pool();
  for (std::uint32_t ad = 0; ad < 4; ++ad) pool.offer(ad, 1, 0);
  const std::string bytes = saved_pool_bytes(pool);

  // A pool whose cap fits only two of the four saved detectors must refuse
  // with the same length_error live creation throws.
  GroupBloomFilter probe(WindowSpec::jumping_count(64, 4), [] {
    GroupBloomFilter::Options o;
    o.bits_per_subfilter = 1 << 10;
    o.hash_count = 3;
    o.seed = 9;
    return o;
  }());
  adnet::DetectorPoolOptions small_cap;
  small_cap.memory_cap_bits = probe.memory_bits() * 2;
  adnet::DetectorPool target(
      [](std::uint32_t) {
        GroupBloomFilter::Options o;
        o.bits_per_subfilter = 1 << 10;
        o.hash_count = 3;
        o.seed = 9;
        return std::make_unique<GroupBloomFilter>(
            WindowSpec::jumping_count(64, 4), o);
      },
      small_cap);
  std::stringstream in(bytes);
  EXPECT_THROW(target.restore(in), std::length_error);
}

}  // namespace
}  // namespace ppc::core
