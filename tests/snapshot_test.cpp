// Tests for detector snapshotting: a reloaded detector must be verdict-
// for-verdict identical to one that never stopped, for both algorithms,
// both window bases, and at arbitrary checkpoints (including mid-cleaning
// and mid-sub-window).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/group_bloom_filter.hpp"
#include "core/timing_bloom_filter.hpp"
#include "detector_test_util.hpp"

namespace ppc::core {
namespace {

GroupBloomFilter::Options gbf_opts() {
  GroupBloomFilter::Options o;
  o.bits_per_subfilter = 1 << 14;
  o.hash_count = 5;
  o.seed = 9;
  return o;
}

TimingBloomFilter::Options tbf_opts() {
  TimingBloomFilter::Options o;
  o.entries = 1 << 14;
  o.hash_count = 5;
  o.seed = 9;
  return o;
}

struct CheckpointCase {
  std::uint64_t checkpoint_at;
};

class GbfSnapshotTest : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(GbfSnapshotTest, ResumesIdenticallyAfterReload) {
  const auto w = WindowSpec::jumping_count(512, 4);
  GroupBloomFilter reference(w, gbf_opts());
  GroupBloomFilter live(w, gbf_opts());
  const auto ids = testutil::make_id_stream(8000, 0.3, 1024, 77);

  std::unique_ptr<GroupBloomFilter> resumed;
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    if (i == GetParam().checkpoint_at) {
      std::stringstream buffer;
      live.save(buffer);
      resumed = GroupBloomFilter::load(buffer);
    }
    const bool expected = reference.offer(ids[i]);
    DuplicateDetector& d = resumed ? *resumed : live;
    ASSERT_EQ(d.offer(ids[i]), expected) << "diverged at arrival " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Checkpoints, GbfSnapshotTest,
    ::testing::Values(CheckpointCase{0},     // before any arrival
                      CheckpointCase{1},     // right after the first
                      CheckpointCase{511},   // just before a jump
                      CheckpointCase{512},   // right at a jump
                      CheckpointCase{1300},  // mid-sub-window, mid-cleaning
                      CheckpointCase{4096}));

class TbfSnapshotTest : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(TbfSnapshotTest, ResumesIdenticallyAfterReload) {
  const auto w = WindowSpec::sliding_count(512);
  TimingBloomFilter reference(w, tbf_opts());
  TimingBloomFilter live(w, tbf_opts());
  const auto ids = testutil::make_id_stream(8000, 0.3, 1024, 78);

  std::unique_ptr<TimingBloomFilter> resumed;
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    if (i == GetParam().checkpoint_at) {
      std::stringstream buffer;
      live.save(buffer);
      resumed = TimingBloomFilter::load(buffer);
    }
    const bool expected = reference.offer(ids[i]);
    DuplicateDetector& d = resumed ? *resumed : live;
    ASSERT_EQ(d.offer(ids[i]), expected) << "diverged at arrival " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Checkpoints, TbfSnapshotTest,
    ::testing::Values(CheckpointCase{0}, CheckpointCase{1},
                      CheckpointCase{511}, CheckpointCase{512},
                      CheckpointCase{1023},  // wraparound boundary region
                      CheckpointCase{4096}));

TEST(TbfSnapshot, TimeBasedStateSurvives) {
  const auto w = WindowSpec::sliding_time(1'000'000, 10'000);
  TimingBloomFilter live(w, tbf_opts());
  live.offer(5, 100'000);
  live.offer(6, 200'000);

  std::stringstream buffer;
  live.save(buffer);
  auto resumed = TimingBloomFilter::load(buffer);

  // In-window duplicates still flagged, expiry clock still correct.
  EXPECT_TRUE(resumed->offer(5, 300'000));
  EXPECT_FALSE(resumed->offer(5, 5'000'000));
}

TEST(GbfSnapshot, TimeBasedStateSurvives) {
  const auto w = WindowSpec::jumping_time(1'000'000, 4, 10'000);
  GroupBloomFilter live(w, gbf_opts());
  live.offer(5, 100'000);

  std::stringstream buffer;
  live.save(buffer);
  auto resumed = GroupBloomFilter::load(buffer);
  EXPECT_TRUE(resumed->offer(5, 300'000));
  EXPECT_FALSE(resumed->offer(5, 10'000'000));
}

TEST(Snapshot, RejectsGarbageAndWrongMagic) {
  std::stringstream garbage("this is not a snapshot at all, sorry");
  EXPECT_THROW(TimingBloomFilter::load(garbage), std::runtime_error);

  // A GBF snapshot is not a TBF snapshot.
  GroupBloomFilter gbf(WindowSpec::jumping_count(64, 2), gbf_opts());
  std::stringstream buffer;
  gbf.save(buffer);
  EXPECT_THROW(TimingBloomFilter::load(buffer), std::runtime_error);
}

// A corrupt word-count header must surface as runtime_error BEFORE any
// allocation is attempted — not as a multi-GiB std::vector resize (or
// bad_alloc / OOM-kill) followed by EOF. The TBF layout puts the word
// count at a fixed offset: magic + 5 window fields + 5 option fields +
// 5 state fields = 16 u64s = 128 bytes.
TEST(Snapshot, RejectsForgedWordCountHeader) {
  TimingBloomFilter tbf(WindowSpec::sliding_count(64), tbf_opts());
  tbf.offer(42);
  std::stringstream buffer;
  tbf.save(buffer);
  std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 136u);

  constexpr std::size_t kWordCountOffset = 128;
  // Absurd count (fails the absolute cap).
  std::string forged = bytes;
  const std::uint64_t huge = ~std::uint64_t{0} >> 3;
  std::memcpy(forged.data() + kWordCountOffset, &huge, 8);
  std::stringstream forged_in(forged);
  EXPECT_THROW(TimingBloomFilter::load(forged_in), std::runtime_error);

  // Plausible-looking count that still exceeds the remaining bytes
  // (fails the remaining-stream bound).
  forged = bytes;
  const std::uint64_t oversize =
      (bytes.size() - kWordCountOffset) / 8 + 1000;
  std::memcpy(forged.data() + kWordCountOffset, &oversize, 8);
  std::stringstream oversize_in(forged);
  EXPECT_THROW(TimingBloomFilter::load(oversize_in), std::runtime_error);

  // Unchanged bytes still load — the forgery, not the check, is at fault.
  std::stringstream intact(bytes);
  EXPECT_NO_THROW(TimingBloomFilter::load(intact));
}

TEST(Snapshot, RejectsTruncatedInput) {
  TimingBloomFilter tbf(WindowSpec::sliding_count(64), tbf_opts());
  std::stringstream buffer;
  tbf.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(TimingBloomFilter::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace ppc::core
