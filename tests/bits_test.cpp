// Unit tests for the bit-storage substrate (BitVector, PackedIntVector,
// SlicedBitMatrix), with emphasis on word-boundary edge cases: every filter
// in the library depends on these being exactly right.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "stream/rng.hpp"

#include "bits/bit_vector.hpp"
#include "bits/packed_int_vector.hpp"
#include "bits/sliced_bit_matrix.hpp"

namespace ppc::bits {
namespace {

// -------------------------------------------------------------- BitVector

TEST(BitVector, StartsAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetTestResetRoundTrip) {
  BitVector v(200);
  for (std::size_t i = 0; i < 200; i += 7) v.set(i);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_EQ(v.test(i), i % 7 == 0);
  for (std::size_t i = 0; i < 200; i += 7) v.reset(i);
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, TestAndSetReportsPriorValue) {
  BitVector v(64);
  EXPECT_FALSE(v.test_and_set(63));
  EXPECT_TRUE(v.test_and_set(63));
}

TEST(BitVector, CountAndFillFactor) {
  BitVector v(128);
  for (std::size_t i = 0; i < 32; ++i) v.set(i * 4);
  EXPECT_EQ(v.count(), 32u);
  EXPECT_DOUBLE_EQ(v.fill_factor(), 0.25);
}

struct ResetRangeCase {
  std::size_t size, begin, end;
};

class BitVectorResetRangeTest
    : public ::testing::TestWithParam<ResetRangeCase> {};

TEST_P(BitVectorResetRangeTest, ClearsExactlyTheRange) {
  const auto& p = GetParam();
  BitVector v(p.size);
  for (std::size_t i = 0; i < p.size; ++i) v.set(i);
  v.reset_range(p.begin, p.end);
  for (std::size_t i = 0; i < p.size; ++i) {
    EXPECT_EQ(v.test(i), i < p.begin || i >= p.end) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, BitVectorResetRangeTest,
    ::testing::Values(ResetRangeCase{128, 0, 0},      // empty range
                      ResetRangeCase{128, 0, 128},    // everything
                      ResetRangeCase{128, 0, 64},     // exactly one word
                      ResetRangeCase{128, 64, 128},   // second word
                      ResetRangeCase{128, 63, 65},    // straddles boundary
                      ResetRangeCase{128, 1, 127},    // inner with ragged ends
                      ResetRangeCase{200, 60, 197},   // multi-word middle
                      ResetRangeCase{64, 5, 6},       // single bit
                      ResetRangeCase{65, 63, 65}));   // tail partial word

TEST(BitVector, EmptyVectorFillFactorIsZero) {
  BitVector v;
  EXPECT_DOUBLE_EQ(v.fill_factor(), 0.0);
}

// -------------------------------------------------------- PackedIntVector

class PackedIntVectorWidthTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(PackedIntVectorWidthTest, RoundTripsPatternsAtEveryWidth) {
  const std::size_t width = GetParam();
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  PackedIntVector v(97, width);  // 97: prime, guarantees straddling entries
  EXPECT_EQ(v.max_value(), mask);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v.set(i, (0x9e3779b97f4a7c15ULL * (i + 1)) & mask);
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.get(i), (0x9e3779b97f4a7c15ULL * (i + 1)) & mask)
        << "width " << width << " index " << i;
  }
}

TEST_P(PackedIntVectorWidthTest, NeighborsDoNotInterfere) {
  const std::size_t width = GetParam();
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  PackedIntVector v(50, width, mask);  // all entries at max
  v.set(25, 0);
  EXPECT_EQ(v.get(24), mask);
  EXPECT_EQ(v.get(25), 0u);
  EXPECT_EQ(v.get(26), mask);
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedIntVectorWidthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 21, 24,
                                           31, 32, 33, 48, 63, 64));

TEST(PackedIntVector, FillInitialization) {
  PackedIntVector v(1000, 21, (1u << 21) - 1);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.get(i), (1u << 21) - 1);
  }
}

TEST(PackedIntVector, PayloadBits) {
  PackedIntVector v(1000, 21);
  EXPECT_EQ(v.payload_bits(), 21'000u);
}

// -------------------------------------------------------- SlicedBitMatrix

TEST(SlicedBitMatrix, SetAndTestPerSlot) {
  SlicedBitMatrix m(100, 9);
  m.set(3, 50);
  m.set(8, 50);
  EXPECT_TRUE(m.test(3, 50));
  EXPECT_TRUE(m.test(8, 50));
  EXPECT_FALSE(m.test(4, 50));
  EXPECT_FALSE(m.test(3, 51));
}

TEST(SlicedBitMatrix, WordGroupsSlotsTogether) {
  SlicedBitMatrix m(10, 5);
  m.set(0, 7);
  m.set(2, 7);
  m.set(4, 7);
  EXPECT_EQ(m.word(7), 0b10101u);
}

TEST(SlicedBitMatrix, ProbeAndIntersectsRows) {
  SlicedBitMatrix m(64, 4);
  // Slot 1 contains rows {3, 9}; slot 2 only row 3.
  m.set(1, 3);
  m.set(1, 9);
  m.set(2, 3);
  const std::vector<std::uint64_t> probe{3, 9};
  EXPECT_EQ(m.probe_and(probe), 0b0010u);  // only slot 1 has both rows
  const std::vector<std::uint64_t> probe_one{3};
  EXPECT_EQ(m.probe_and(probe_one), 0b0110u);
}

TEST(SlicedBitMatrix, ClearSlotRowsLeavesOtherSlotsIntact) {
  SlicedBitMatrix m(128, 6);
  for (std::size_t r = 0; r < 128; ++r) {
    m.set(2, r);
    m.set(3, r);
  }
  m.clear_slot_rows(2, 10, 100);
  for (std::size_t r = 0; r < 128; ++r) {
    EXPECT_EQ(m.test(2, r), r < 10 || r >= 100);
    EXPECT_TRUE(m.test(3, r));
  }
}

TEST(SlicedBitMatrix, MultiLaneBeyond64Slots) {
  SlicedBitMatrix m(32, 130);  // 3 lanes
  EXPECT_EQ(m.lanes(), 3u);
  m.set(0, 5);
  m.set(64, 5);
  m.set(129, 5);
  EXPECT_TRUE(m.test(0, 5));
  EXPECT_TRUE(m.test(64, 5));
  EXPECT_TRUE(m.test(129, 5));
  EXPECT_FALSE(m.test(65, 5));
  const std::vector<std::uint64_t> probe{5};
  EXPECT_EQ(m.probe_and(probe, 0), 1u);
  EXPECT_EQ(m.probe_and(probe, 1), 1u);
  EXPECT_EQ(m.probe_and(probe, 2), 2u);
}

TEST(SlicedBitMatrix, CountSlot) {
  SlicedBitMatrix m(1000, 3);
  for (std::size_t r = 0; r < 1000; r += 10) m.set(1, r);
  EXPECT_EQ(m.count_slot(1), 100u);
  EXPECT_EQ(m.count_slot(0), 0u);
}

// ------------------------------------------------ differential fuzzing

TEST(PackedIntVectorFuzz, MatchesReferenceVectorUnderRandomOps) {
  // 20k random get/set/fill ops at awkward widths vs a plain uint64 vector.
  for (const std::size_t width : {3u, 13u, 21u, 37u, 61u}) {
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    PackedIntVector packed(501, width);
    std::vector<std::uint64_t> reference(501, 0);
    stream::Rng rng(width * 1000003);
    for (int op = 0; op < 20'000; ++op) {
      const std::size_t i = static_cast<std::size_t>(rng.below(501));
      switch (rng.below(8)) {
        case 0: {  // occasional fill
          const std::uint64_t v = rng.next() & mask;
          packed.fill_all(v);
          std::fill(reference.begin(), reference.end(), v);
          break;
        }
        default: {
          const std::uint64_t v = rng.next() & mask;
          packed.set(i, v);
          reference[i] = v;
          break;
        }
      }
      const std::size_t probe = static_cast<std::size_t>(rng.below(501));
      ASSERT_EQ(packed.get(probe), reference[probe])
          << "width " << width << " op " << op;
    }
  }
}

TEST(SlicedBitMatrixFuzz, MatchesReferenceUnderRandomOps) {
  constexpr std::size_t kRows = 300;
  constexpr std::size_t kSlots = 70;  // forces two lanes
  SlicedBitMatrix m(kRows, kSlots);
  std::vector<std::vector<bool>> reference(kSlots,
                                           std::vector<bool>(kRows, false));
  stream::Rng rng(99);
  for (int op = 0; op < 20'000; ++op) {
    const std::size_t slot = static_cast<std::size_t>(rng.below(kSlots));
    if (rng.chance(0.9)) {
      const std::size_t row = static_cast<std::size_t>(rng.below(kRows));
      m.set(slot, row);
      reference[slot][row] = true;
    } else {
      std::size_t a = static_cast<std::size_t>(rng.below(kRows));
      std::size_t b = static_cast<std::size_t>(rng.below(kRows + 1));
      if (a > b) std::swap(a, b);
      m.clear_slot_rows(slot, a, b);
      for (std::size_t r = a; r < b; ++r) reference[slot][r] = false;
    }
    const std::size_t ps = static_cast<std::size_t>(rng.below(kSlots));
    const std::size_t pr = static_cast<std::size_t>(rng.below(kRows));
    ASSERT_EQ(m.test(ps, pr), reference[ps][pr]) << "op " << op;
  }
  // Full sweep at the end, including per-slot counts.
  for (std::size_t s2 = 0; s2 < kSlots; ++s2) {
    std::size_t expected = 0;
    for (std::size_t r = 0; r < kRows; ++r) {
      ASSERT_EQ(m.test(s2, r), reference[s2][r]);
      expected += reference[s2][r] ? 1 : 0;
    }
    ASSERT_EQ(m.count_slot(s2), expected);
  }
}

TEST(BitVectorFuzz, ResetRangeMatchesReference) {
  BitVector v(777);
  std::vector<bool> reference(777, false);
  stream::Rng rng(5);
  for (int op = 0; op < 10'000; ++op) {
    if (rng.chance(0.7)) {
      const std::size_t i = static_cast<std::size_t>(rng.below(777));
      v.set(i);
      reference[i] = true;
    } else {
      std::size_t a = static_cast<std::size_t>(rng.below(777));
      std::size_t b = static_cast<std::size_t>(rng.below(778));
      if (a > b) std::swap(a, b);
      v.reset_range(a, b);
      for (std::size_t r = a; r < b; ++r) reference[r] = false;
    }
  }
  std::size_t expected_count = 0;
  for (std::size_t i = 0; i < 777; ++i) {
    ASSERT_EQ(v.test(i), reference[i]);
    expected_count += reference[i] ? 1 : 0;
  }
  EXPECT_EQ(v.count(), expected_count);
}

}  // namespace
}  // namespace ppc::bits
