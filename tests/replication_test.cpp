// Fault-injection proof of warm-standby replication.
//
// Every test composes a real primary (IngestServer + ReplicationLog +
// ReplicationSource on loopback sockets) with a real follower
// (ReplicationApplier + ReplicationFollower), optionally routed through
// tests/chaos_proxy.hpp so scripted link failures — connections killed at
// byte N, frames truncated mid-header, transfers stalled — land between
// them. The acceptance bar everywhere is BYTE-IDENTITY: after the primary
// drains and the follower converges, both sinks' drain snapshots must be
// the same bytes, and both must equal an uninterrupted single-process run
// of the same click stream. Failover is proven end to end twice — in
// process (promote the follower's sink behind a fresh IngestServer) and
// at the CLI (ppcd --follow promoted via SIGUSR1) — with the concatenated
// verdict stream compared click-for-click against an oracle that never
// crashed.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "adnet/detector_pool.hpp"
#include "chaos_proxy.hpp"
#include "enforce/reputation_ledger.hpp"
#include "server/client.hpp"
#include "server/enforcing_sink.hpp"
#include "server/ingest_server.hpp"
#include "server/replication.hpp"
#include "server/server_config.hpp"
#include "stream/click.hpp"
#include "stream/generators.hpp"

namespace ppc::server {
namespace {

// ------------------------------------------------------------- fixtures

/// A serving primary with replication enabled: ingest listener, bounded
/// ring, and a replication listener streaming it to followers. The caller
/// owns the sink (so any sink type can be replicated).
class ReplicatedPrimary {
 public:
  explicit ReplicatedPrimary(ClickSink& sink,
                             ReplicationLog::Options ring = {},
                             IngestServer::Options opts = {})
      : log(ring),
        srv(sink, with_log(opts, log)),
        source(log,
               [this](std::uint64_t& base) {
                 return srv.replication_snapshot(base);
               }) {
    ingest_port = srv.listen("127.0.0.1", 0);
    repl_port = source.listen("127.0.0.1", 0);
    source.start();
    loop_ = std::thread([this] { srv.run(); });
  }

  ~ReplicatedPrimary() {
    drain();
    source.stop();
  }

  /// Graceful shutdown: stop the loop, drain (the final flush lands in the
  /// ring before this returns). Idempotent.
  IngestServer::Stats drain() {
    if (loop_.joinable()) {
      srv.stop();
      loop_.join();
      drained_ = srv.drain();
    }
    return drained_;
  }

  ReplicationLog log;
  IngestServer srv;
  ReplicationSource source;
  std::uint16_t ingest_port = 0;
  std::uint16_t repl_port = 0;

 private:
  static IngestServer::Options with_log(IngestServer::Options o,
                                        ReplicationLog& l) {
    o.replication = &l;
    return o;
  }

  std::thread loop_;
  IngestServer::Stats drained_{};
};

/// The follower half: an applier over the caller's sink and the wire pump
/// feeding it. start() may target the primary directly or a ChaosProxy.
class Standby {
 public:
  explicit Standby(ClickSink& sink) : applier(sink) {}
  ~Standby() { stop(); }

  void start(std::uint16_t port) {
    follower =
        std::make_unique<ReplicationFollower>("127.0.0.1", port, applier);
    follower->start();
  }
  void stop() {
    if (follower) follower->stop();
  }

  ReplicationApplier applier;
  std::unique_ptr<ReplicationFollower> follower;
};

/// Polls until the applier's cursor reaches the ring's end (all appended
/// batches applied, no snapshot transfer in flight).
bool wait_caught_up(const ReplicationApplier& applier,
                    const ReplicationLog& log, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (applier.next_seq() == log.next_seq() && !applier.in_snapshot()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return applier.next_seq() == log.next_seq() && !applier.in_snapshot();
}

// -------------------------------------------------------------- helpers

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Drain-snapshot bytes of any sink — the byte-identity currency of this
/// suite (same envelope ppcd writes on SIGTERM).
std::string snapshot_bytes(const ClickSink& sink, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  IngestServer::save_sink_snapshot(sink, path);
  return slurp(path);
}

DetectorConfig gbf_config() {
  DetectorConfig cfg;
  cfg.window = core::WindowSpec::jumping_count(4096, 8);  // → GBF
  cfg.memory_bits = std::uint64_t{1} << 18;
  return cfg;
}

std::vector<wire::ClickRecord> make_clicks(std::uint32_t ad_id,
                                           std::size_t count,
                                           std::uint64_t seed) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = seed;
  opts.user_count = 500;  // small population → plenty of duplicates
  stream::MixedTrafficStream gen(opts);
  std::vector<wire::ClickRecord> clicks(count);
  for (auto& rec : clicks) {
    stream::Click c = gen.next();
    c.ad_id = ad_id;
    rec = {c.ad_id, stream::click_identifier(c), c.time_us};
  }
  return clicks;
}

/// v2 clicks spread over `ad_count` ads with deterministic source IPs:
/// every 5th click comes from one of 3 "attacker" sources re-firing a tiny
/// id pool (hot duplicates for the ledger), the rest from a benign rotation.
std::vector<wire::ClickRecordV2> make_clicks_v2(std::size_t count,
                                                std::uint32_t ad_count,
                                                std::uint64_t seed) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = seed;
  opts.user_count = 500;
  stream::MixedTrafficStream gen(opts);
  std::vector<wire::ClickRecordV2> clicks(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream::Click c = gen.next();
    wire::ClickRecordV2& rec = clicks[i];
    rec.ad_id = 1 + static_cast<std::uint32_t>(i % ad_count);
    rec.t_us = c.time_us;
    if (i % 5 == 0) {
      rec.source_ip = 0x0a000001 + static_cast<std::uint32_t>(i % 3);
      rec.click_id = 0xbad0000 + (i % 16);  // tiny pool → duplicate storm
    } else {
      rec.source_ip = 0x14000000 + static_cast<std::uint32_t>(i % 64);
      rec.click_id = stream::click_identifier(c);
    }
  }
  return clicks;
}

std::vector<bool> oracle_verdicts(const DetectorConfig& cfg,
                                  std::span<const wire::ClickRecord> clicks) {
  auto detector = build_detector(cfg);
  std::vector<bool> verdicts(clicks.size());
  for (std::size_t i = 0; i < clicks.size(); ++i) {
    verdicts[i] = detector->offer(clicks[i].click_id, clicks[i].t_us);
  }
  return verdicts;
}

/// Offers v1 clicks straight into a sink (no wire) — builds uninterrupted
/// oracle runs and pre-crash baselines for the restore tests.
void offer_direct(ClickSink& sink, std::span<const wire::ClickRecord> clicks,
                  std::size_t batch) {
  std::vector<std::uint32_t> ads;
  std::vector<std::uint64_t> ids, times;
  std::vector<char> out;
  for (std::size_t off = 0; off < clicks.size(); off += batch) {
    const std::size_t n = std::min(batch, clicks.size() - off);
    ads.resize(n);
    ids.resize(n);
    times.resize(n);
    out.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ads[i] = clicks[off + i].ad_id;
      ids[i] = clicks[off + i].click_id;
      times[i] = clicks[off + i].t_us;
    }
    sink.offer(ads, ids, times, {reinterpret_cast<bool*>(out.data()), n});
  }
}

/// Lock-step send of v1 batches, collecting verdict bits in order.
void send_and_collect(BlockingClient& client,
                      std::span<const wire::ClickRecord> clicks,
                      std::size_t batch, std::vector<bool>& out) {
  out.clear();
  out.reserve(clicks.size());
  std::uint64_t seq = 0;
  std::size_t sent = 0;
  while (sent < clicks.size()) {
    const std::size_t n = std::min(batch, clicks.size() - sent);
    client.send_click_batch(seq, clicks.subspan(sent, n));
    sent += n;
    wire::FrameView frame;
    ASSERT_TRUE(client.read_frame(frame));
    ASSERT_EQ(frame.type, wire::FrameType::kVerdictBatch);
    wire::VerdictBatchView view;
    std::string err;
    ASSERT_TRUE(wire::parse_verdict_batch(frame.payload, view, err)) << err;
    ASSERT_EQ(view.seq, seq);
    ASSERT_EQ(view.count, n);
    for (std::uint32_t i = 0; i < view.count; ++i) {
      out.push_back(view.duplicate(i));
    }
    ++seq;
  }
}

/// v2 variant of send_and_collect (source-attributed clicks).
void send_and_collect_v2(BlockingClient& client,
                         std::span<const wire::ClickRecordV2> clicks,
                         std::size_t batch, std::vector<bool>& out) {
  out.clear();
  out.reserve(clicks.size());
  std::uint64_t seq = 0;
  std::size_t sent = 0;
  while (sent < clicks.size()) {
    const std::size_t n = std::min(batch, clicks.size() - sent);
    client.send_click_batch_v2(seq, clicks.subspan(sent, n));
    sent += n;
    wire::FrameView frame;
    ASSERT_TRUE(client.read_frame(frame));
    ASSERT_EQ(frame.type, wire::FrameType::kVerdictBatch);
    wire::VerdictBatchView view;
    std::string err;
    ASSERT_TRUE(wire::parse_verdict_batch(frame.payload, view, err)) << err;
    ASSERT_EQ(view.seq, seq);
    ASSERT_EQ(view.count, n);
    for (std::uint32_t i = 0; i < view.count; ++i) {
      out.push_back(view.duplicate(i));
    }
    ++seq;
  }
}

// ------------------------------------------------------ ring unit checks

TEST(ReplicationLog, SplitsOversizedAppendsAndEvictsOldestFirst) {
  ReplicationLog::Options o;
  o.max_batches = 3;
  ReplicationLog log(o);

  // 40000 clicks in one append must split at the wire batch cap.
  const std::size_t n = 40'000;
  std::vector<std::uint32_t> ads(n, 1), sources;
  std::vector<std::uint64_t> ids(n), times(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = i;
    times[i] = i;
  }
  log.append(ads, ids, times, sources);
  EXPECT_EQ(log.first_seq(), 1u);
  EXPECT_EQ(log.next_seq(), 3u);  // 32768 + 7232
  ReplicationLog::Batch b;
  ASSERT_TRUE(log.get(1, b));
  EXPECT_EQ(b.count, wire::kMaxClicksPerBatch);
  ASSERT_TRUE(log.get(2, b));
  EXPECT_EQ(b.count, n - wire::kMaxClicksPerBatch);

  // Two more appends overflow max_batches=3: the OLDEST entries go.
  log.append(std::span(ads).first(10), std::span(ids).first(10),
             std::span(times).first(10), {});
  log.append(std::span(ads).first(10), std::span(ids).first(10),
             std::span(times).first(10), {});
  EXPECT_EQ(log.next_seq(), 5u);
  EXPECT_EQ(log.first_seq(), 2u);
  EXPECT_EQ(log.evicted_batches(), 1u);
  EXPECT_FALSE(log.get(1, b));
  ASSERT_TRUE(log.get(4, b));
  EXPECT_EQ(b.count, 10u);
  EXPECT_EQ(log.appended_clicks(), n + 20);
}

// start_seq > 1 models a primary whose sink was seeded from a restored
// baseline: the skipped sequences read as already-evicted, so a cursor at
// or below the baseline can never be served by ring replay.
TEST(ReplicationLog, StartSeqReadsAsAlreadyEvictedBaseline) {
  ReplicationLog::Options o;
  o.start_seq = 2;
  ReplicationLog log(o);
  EXPECT_EQ(log.first_seq(), 2u);
  EXPECT_EQ(log.next_seq(), 2u);

  const std::vector<std::uint32_t> ads(1, 1);
  const std::vector<std::uint64_t> ids(1, 7), times(1, 9);
  log.append(ads, ids, times, {});
  ReplicationLog::Batch b;
  EXPECT_FALSE(log.get(1, b)) << "seq 1 is the baseline, not a ring entry";
  ASSERT_TRUE(log.get(2, b));
  EXPECT_EQ(b.count, 1u);
  EXPECT_EQ(log.next_seq(), 3u);

  ReplicationLog::Options bad;
  bad.start_seq = 0;
  EXPECT_THROW(ReplicationLog{bad}, std::invalid_argument);
}

// ------------------------------------------------- clean-link convergence

TEST(Replication, CleanLinkFollowerSnapshotIsByteIdentical) {
  const DetectorConfig cfg = gbf_config();
  adnet::DetectorPool ppool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink psink(ppool);
  adnet::DetectorPool fpool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink fsink(fpool);

  ReplicatedPrimary primary(psink);
  Standby standby(fsink);
  standby.start(primary.repl_port);

  const auto clicks = make_clicks(1, 60'000, 101);
  BlockingClient client;
  client.connect("127.0.0.1", primary.ingest_port);
  client.handshake();
  std::vector<bool> verdicts;
  send_and_collect(client, clicks, 1024, verdicts);
  ASSERT_EQ(verdicts.size(), clicks.size());

  // Replication must not perturb the primary's own verdicts.
  const auto expected = oracle_verdicts(cfg, clicks);
  for (std::size_t i = 0; i < clicks.size(); ++i) {
    ASSERT_EQ(verdicts[i], expected[i]) << "primary diverged at click " << i;
  }

  primary.drain();
  ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 10'000));
  standby.stop();
  primary.source.stop();

  EXPECT_EQ(standby.applier.clicks_applied(), clicks.size());
  EXPECT_EQ(standby.applier.snapshots_applied(), 0u);
  const std::string ps = snapshot_bytes(psink, "clean_primary.snap");
  const std::string fs = snapshot_bytes(fsink, "clean_follower.snap");
  ASSERT_FALSE(ps.empty());
  EXPECT_EQ(ps, fs) << "follower state diverged on a clean link";
}

// --------------------------------------------------- chaos fault schedules

// The follower's link runs through a ChaosProxy scripted with every fault
// kind at several stream positions: connections reset before, during, and
// after the handshake; frames truncated mid-header and mid-payload in both
// directions; a transfer stalled mid-batch. Each failure forces the
// catch-up handshake from the applier's cursor; after the schedule drains
// the link runs clean and the follower MUST converge to the same bytes.
TEST(Replication, FollowerConvergesThroughEveryChaosFaultSchedule) {
  const DetectorConfig cfg = gbf_config();
  adnet::DetectorPool ppool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink psink(ppool);
  adnet::DetectorPool fpool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink fsink(fpool);

  ReplicatedPrimary primary(psink);
  ChaosProxy proxy("127.0.0.1", primary.repl_port);
  const std::uint16_t proxy_port = proxy.listen();

  using FK = ChaosProxy::FaultKind;
  using Dir = ChaosProxy::Direction;
  // One entry per follower connection attempt, consumed in accept order.
  const std::vector<ChaosProxy::Fault> schedule = {
      {FK::kKill, Dir::kServerToClient, 0, 0},      // reset before HELLO_ACK
      {FK::kKill, Dir::kServerToClient, 9, 0},      // reset mid-HELLO_ACK
      {FK::kKill, Dir::kClientToServer, 5, 0},      // reset mid-HELLO
      {FK::kTruncate, Dir::kClientToServer, 25, 0}, // EOF mid-REPL_HELLO
      {FK::kTruncate, Dir::kServerToClient, 30, 0}, // EOF mid-batch header
      {FK::kKill, Dir::kServerToClient, 2000, 0},   // reset mid-batch body
      {FK::kTruncate, Dir::kServerToClient, 4321, 0},  // EOF mid-payload
      {FK::kStall, Dir::kServerToClient, 1000, 150},   // freeze, then flow
  };
  for (const auto& f : schedule) proxy.push_fault(f);

  Standby standby(fsink);
  standby.start(proxy_port);

  const auto clicks = make_clicks(1, 80'000, 202);
  BlockingClient client;
  client.connect("127.0.0.1", primary.ingest_port);
  client.handshake();
  std::vector<bool> verdicts;
  send_and_collect(client, clicks, 999, verdicts);  // odd size: frames never
  ASSERT_EQ(verdicts.size(), clicks.size());        // align with ring entries

  primary.drain();
  ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 30'000))
      << "follower never converged; last error: "
      << standby.follower->last_error()
      << " [conns=" << proxy.connections_accepted()
      << " faults=" << proxy.faults_fired()
      << " reconnects=" << standby.follower->reconnects()
      << " applier_next=" << standby.applier.next_seq()
      << " log_next=" << primary.log.next_seq()
      << " sessions=" << primary.source.sessions_accepted() << "]";
  standby.stop();
  primary.source.stop();
  proxy.stop();

  // Most of the schedule must actually have fired (late entries can be
  // skipped only if convergence used fewer reconnects, which the kill
  // entries make impossible).
  EXPECT_GE(proxy.faults_fired(), schedule.size() - 1);
  EXPECT_GE(standby.follower->reconnects(), 5u);
  EXPECT_EQ(standby.applier.clicks_applied(), clicks.size());

  const std::string ps = snapshot_bytes(psink, "chaos_primary.snap");
  const std::string fs = snapshot_bytes(fsink, "chaos_follower.snap");
  ASSERT_FALSE(ps.empty());
  EXPECT_EQ(ps, fs) << "a link fault corrupted follower state";

  const auto expected = oracle_verdicts(cfg, clicks);
  for (std::size_t i = 0; i < clicks.size(); ++i) {
    ASSERT_EQ(verdicts[i], expected[i]) << "primary diverged at click " << i;
  }
}

// ------------------------------------------------------- catch-up paths

// A follower that connects AFTER the whole stream was ingested replays
// everything from the ring (no snapshot transfer involved).
TEST(Replication, LateFollowerCatchesUpFromRing) {
  const DetectorConfig cfg = gbf_config();
  adnet::DetectorPool ppool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink psink(ppool);
  adnet::DetectorPool fpool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink fsink(fpool);

  ReplicatedPrimary primary(psink);  // default ring: holds everything here
  const auto clicks = make_clicks(1, 40'000, 303);
  BlockingClient client;
  client.connect("127.0.0.1", primary.ingest_port);
  client.handshake();
  std::vector<bool> verdicts;
  send_and_collect(client, clicks, 1024, verdicts);
  primary.drain();
  EXPECT_EQ(primary.log.evicted_batches(), 0u);

  Standby standby(fsink);
  standby.start(primary.repl_port);
  ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 10'000));
  standby.stop();
  primary.source.stop();

  EXPECT_EQ(standby.applier.snapshots_applied(), 0u)
      << "ring replay must not need a snapshot";
  EXPECT_EQ(standby.applier.clicks_applied(), clicks.size());
  EXPECT_EQ(snapshot_bytes(psink, "ring_primary.snap"),
            snapshot_bytes(fsink, "ring_follower.snap"));
}

// With a 2-entry ring the stream rotates far past a fresh follower's
// cursor, forcing the snapshot transfer (chunked: the 1 MiB detector
// state spans multiple REPL_SNAPSHOT frames) plus a ring-tail replay.
TEST(Replication, RotatedRingFallsBackToChunkedSnapshotCatchUp) {
  DetectorConfig cfg = gbf_config();
  cfg.memory_bits = std::uint64_t{1} << 23;  // 1 MiB → multi-chunk snapshot
  adnet::DetectorPool ppool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink psink(ppool);
  adnet::DetectorPool fpool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink fsink(fpool);

  ReplicationLog::Options ring;
  ring.max_batches = 2;
  ReplicatedPrimary primary(psink, ring);

  const auto clicks = make_clicks(1, 100'000, 404);
  BlockingClient client;
  client.connect("127.0.0.1", primary.ingest_port);
  client.handshake();
  std::vector<bool> verdicts;
  send_and_collect(client, clicks, 1024, verdicts);
  ASSERT_GT(primary.log.evicted_batches(), 0u)
      << "the ring never rotated; the test would not cover snapshots";

  // Fresh follower: REPL_HELLO presents seq 1, long gone from the ring.
  Standby standby(fsink);
  standby.start(primary.repl_port);

  // Keep ingesting while the snapshot ships — the cut must stay exact.
  const auto more = make_clicks(1, 20'000, 405);
  std::vector<bool> more_verdicts;
  send_and_collect(client, more, 1024, more_verdicts);

  primary.drain();
  ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 30'000))
      << standby.follower->last_error();
  standby.stop();
  primary.source.stop();

  EXPECT_GE(standby.applier.snapshots_applied(), 1u)
      << "catch-up must have used the snapshot path";
  EXPECT_LT(standby.applier.clicks_applied(), clicks.size() + more.size())
      << "the snapshot must have covered a prefix (not replayed per click)";
  EXPECT_EQ(snapshot_bytes(psink, "rot_primary.snap"),
            snapshot_bytes(fsink, "rot_follower.snap"));
}

// A primary seeded from a restored baseline snapshot starts its ring at
// seq 2 (exactly what ppcd --restore --replicate-listen configures): the
// baseline stands in for seq 1 but never entered the ring, so a fresh
// follower's cursor (1) MUST route through the snapshot catch-up path —
// ring replay from 1 would skip the baseline and silently diverge.
TEST(Replication, RestoredPrimaryServesBaselineThroughSnapshotCatchUp) {
  const DetectorConfig cfg = gbf_config();
  const auto baseline = make_clicks(1, 30'000, 606);
  const auto live = make_clicks(1, 20'000, 616);

  // Pre-crash primary: consume the baseline, snapshot, "crash".
  const std::string baseline_snap = ::testing::TempDir() + "/baseline.snap";
  {
    adnet::DetectorPool pool(
        [cfg](std::uint32_t) { return build_detector(cfg); });
    PoolSink sink(pool);
    offer_direct(sink, baseline, 1024);
    IngestServer::save_sink_snapshot(sink, baseline_snap);
  }

  // Restarted primary: baseline restored into a fresh sink BEFORE the
  // ring exists, ring seeded past it.
  adnet::DetectorPool ppool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink psink(ppool);
  IngestServer::restore_sink_snapshot(psink, baseline_snap);
  ReplicationLog::Options ring;
  ring.start_seq = 2;
  ReplicatedPrimary primary(psink, ring);

  adnet::DetectorPool fpool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink fsink(fpool);
  Standby standby(fsink);
  standby.start(primary.repl_port);

  BlockingClient client;
  client.connect("127.0.0.1", primary.ingest_port);
  client.handshake();
  std::vector<bool> verdicts;
  send_and_collect(client, live, 1024, verdicts);

  primary.drain();
  ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 15'000))
      << standby.follower->last_error();
  standby.stop();
  primary.source.stop();

  EXPECT_GE(standby.applier.snapshots_applied(), 1u)
      << "the baseline can only cross as a snapshot, never as ring replay";

  // Byte-identity against BOTH the restored primary and an uninterrupted
  // run of baseline + live: the baseline really reached the follower.
  adnet::DetectorPool opool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink osink(opool);
  offer_direct(osink, baseline, 1024);
  offer_direct(osink, live, 1024);
  const std::string ps = snapshot_bytes(psink, "restored_primary.snap");
  EXPECT_EQ(ps, snapshot_bytes(fsink, "restored_follower.snap"))
      << "follower missed the restored baseline";
  EXPECT_EQ(ps, snapshot_bytes(osink, "restored_oracle.snap"))
      << "replicated pair diverged from the uninterrupted run";
}

// Chaos ON the snapshot transfer itself: the first two attempts die mid-
// chunk (truncation, then a reset); reset_transfer must discard the
// partial bytes and the third attempt's fresh transfer must restore an
// exact cut.
TEST(Replication, SnapshotTransferHealsAfterTruncationAndReset) {
  DetectorConfig cfg = gbf_config();
  cfg.memory_bits = std::uint64_t{1} << 23;
  adnet::DetectorPool ppool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink psink(ppool);
  adnet::DetectorPool fpool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink fsink(fpool);

  ReplicationLog::Options ring;
  ring.max_batches = 2;
  ReplicatedPrimary primary(psink, ring);

  const auto clicks = make_clicks(1, 100'000, 505);
  BlockingClient client;
  client.connect("127.0.0.1", primary.ingest_port);
  client.handshake();
  std::vector<bool> verdicts;
  send_and_collect(client, clicks, 1024, verdicts);
  ASSERT_GT(primary.log.evicted_batches(), 0u);
  primary.drain();

  ChaosProxy proxy("127.0.0.1", primary.repl_port);
  const std::uint16_t proxy_port = proxy.listen();
  using FK = ChaosProxy::FaultKind;
  using Dir = ChaosProxy::Direction;
  // The snapshot is ~1 MiB of server→client bytes: 300k/700k land inside
  // chunks 0 and 1 of the transfer.
  proxy.push_fault({FK::kTruncate, Dir::kServerToClient, 300'000, 0});
  proxy.push_fault({FK::kKill, Dir::kServerToClient, 700'000, 0});

  Standby standby(fsink);
  standby.start(proxy_port);
  ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 30'000))
      << standby.follower->last_error();
  standby.stop();
  primary.source.stop();
  proxy.stop();

  EXPECT_EQ(proxy.faults_fired(), 2u);
  EXPECT_GE(standby.applier.snapshots_applied(), 1u);
  EXPECT_GE(standby.follower->reconnects(), 2u);
  EXPECT_EQ(snapshot_bytes(psink, "heal_primary.snap"),
            snapshot_bytes(fsink, "heal_follower.snap"));
}

// ------------------------------------------------------ session hygiene

// Followers that flap (connect, die, reconnect) must not accumulate fds
// or zombie threads on the primary: the accept loop reaps every finished
// session within one poll round.
TEST(Replication, FlappingFollowerSessionsAreReapedNotLeaked) {
  const DetectorConfig cfg = gbf_config();
  adnet::DetectorPool pool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink sink(pool);
  ReplicatedPrimary primary(sink);

  constexpr std::size_t kFlaps = 24;
  for (std::size_t i = 0; i < kFlaps; ++i) {
    BlockingClient c;
    c.connect("127.0.0.1", primary.repl_port);
    // Destructor closes immediately: the session sees EOF pre-handshake.
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((primary.source.sessions_accepted() < kFlaps ||
          primary.source.sessions_live() > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(primary.source.sessions_accepted(), kFlaps);
  EXPECT_EQ(primary.source.sessions_live(), 0u)
      << "finished sessions (fd + thread each) were never reaped";
  primary.drain();
  primary.source.stop();
}

// A standby re-pointed at a restarted or wrong primary presents a cursor
// from the future. The primary must refuse the session — counted and
// logged, not silently dropped — and never serve bogus replay.
TEST(Replication, FutureCursorIsRefusedAndCounted) {
  const DetectorConfig cfg = gbf_config();
  adnet::DetectorPool pool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink sink(pool);
  ReplicatedPrimary primary(sink);

  BlockingClient c;
  c.connect("127.0.0.1", primary.repl_port);
  c.handshake(wire::kProtocolVersionV3);
  c.send_repl_hello(primary.log.next_seq() + 100);
  wire::FrameView frame;
  EXPECT_FALSE(c.read_frame(frame))
      << "a future cursor must end the session, got "
      << wire::frame_type_name(frame.type);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (primary.source.future_cursor_refusals() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(primary.source.future_cursor_refusals(), 1u);

  // An exact-cursor handshake on a fresh connection still works: the
  // refusal never poisons the listener.
  BlockingClient ok;
  ok.connect("127.0.0.1", primary.repl_port);
  ok.handshake(wire::kProtocolVersionV3);
  ok.send_repl_hello(primary.log.next_seq());
  primary.drain();
  primary.source.stop();
}

// ------------------------------------- bit-identity across the sink zoo

// Sharded, tiered, and enforcing sinks: for each, THREE parties see the
// same v2 click stream — the replicated primary (over the wire), the
// follower (through replication), and an uninterrupted single-process
// stack (direct sink offers). All three drain snapshots must be the same
// bytes, and the wire verdicts must equal the single-process verdicts.
void run_sink_identity(ClickSink& primary_sink, ClickSink& follower_sink,
                       ClickSink& oracle_sink,
                       std::span<const wire::ClickRecordV2> clicks,
                       const std::string& tag) {
  ReplicatedPrimary primary(primary_sink);
  Standby standby(follower_sink);
  standby.start(primary.repl_port);

  BlockingClient client;
  client.connect("127.0.0.1", primary.ingest_port);
  client.handshake(wire::kProtocolVersionV2);
  std::vector<bool> verdicts;
  send_and_collect_v2(client, clicks, 777, verdicts);
  ASSERT_EQ(verdicts.size(), clicks.size());

  primary.drain();
  ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 20'000))
      << standby.follower->last_error();
  standby.stop();
  primary.source.stop();

  // The uninterrupted run: same clicks, same order, straight into an
  // identically configured sink. Batch boundaries are irrelevant by the
  // chunk-invariance contract, but mirror the wire batching anyway so the
  // comparison assumes nothing.
  std::vector<std::uint32_t> ads, sources;
  std::vector<std::uint64_t> ids, times;
  std::vector<char> out;
  std::vector<bool> direct_verdicts;
  direct_verdicts.reserve(clicks.size());
  for (std::size_t off = 0; off < clicks.size(); off += 777) {
    const std::size_t n = std::min<std::size_t>(777, clicks.size() - off);
    ads.resize(n);
    ids.resize(n);
    times.resize(n);
    sources.resize(n);
    out.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ads[i] = clicks[off + i].ad_id;
      ids[i] = clicks[off + i].click_id;
      times[i] = clicks[off + i].t_us;
      sources[i] = clicks[off + i].source_ip;
    }
    oracle_sink.offer_with_sources(ads, ids, times, sources,
                                   {reinterpret_cast<bool*>(out.data()), n});
    for (std::size_t i = 0; i < n; ++i) direct_verdicts.push_back(out[i]);
  }

  for (std::size_t i = 0; i < clicks.size(); ++i) {
    ASSERT_EQ(verdicts[i], direct_verdicts[i])
        << tag << ": wire verdict diverged from single-process at click "
        << i;
  }
  const std::string ps = snapshot_bytes(primary_sink, tag + "_p.snap");
  EXPECT_EQ(ps, snapshot_bytes(follower_sink, tag + "_f.snap"))
      << tag << ": follower snapshot diverged";
  EXPECT_EQ(ps, snapshot_bytes(oracle_sink, tag + "_o.snap"))
      << tag << ": replicated pair diverged from the uninterrupted run";
}

TEST(ReplicationIdentity, ShardedSinkIsBitIdenticalAcrossAllThreeRuns) {
  DetectorConfig cfg = gbf_config();
  cfg.shards = 2;
  auto d1 = build_detector(cfg);
  auto d2 = build_detector(cfg);
  auto d3 = build_detector(cfg);
  DetectorSink s1(*d1), s2(*d2), s3(*d3);
  const auto clicks = make_clicks_v2(50'000, 4, 606);
  run_sink_identity(s1, s2, s3, clicks, "sharded");
}

TEST(ReplicationIdentity, TieredSinkIsBitIdenticalAcrossAllThreeRuns) {
  TieredConfig tcfg;
  tcfg.memory_cap_bits = std::size_t{1} << 27;
  tcfg.hot_window = core::WindowSpec::sliding_count(256);
  tcfg.tail_window_clicks = 1 << 16;
  tcfg.epoch_clicks = 1 << 10;
  auto p1 = build_tiered_pool(tcfg);
  auto p2 = build_tiered_pool(tcfg);
  auto p3 = build_tiered_pool(tcfg);
  TieredPoolSink s1(*p1), s2(*p2), s3(*p3);
  const auto clicks = make_clicks_v2(50'000, 8, 707);
  run_sink_identity(s1, s2, s3, clicks, "tiered");
}

TEST(ReplicationIdentity, EnforcingSinkIsBitIdenticalAcrossAllThreeRuns) {
  // Fast-promoting policy so the attacker sources actually get blocked
  // inside the test stream — enforcement state (and its verdict effects)
  // must replicate too, not just detector bits.
  enforce::EnforcementPolicy pol;
  pol.flag_min_duplicates = 4;
  pol.discount_min_duplicates = 8;
  pol.block_min_duplicates = 16;
  pol.blatant_min_duplicates = 16;
  pol.rate_alpha = 1.0 / 8;
  pol.min_clicks = 8;
  pol.score_half_life_us = 60'000'000;
  pol.block_ttl_us = 600'000'000;

  DetectorConfig cfg = gbf_config();
  cfg.shards = 2;
  auto d1 = build_detector(cfg);
  auto d2 = build_detector(cfg);
  auto d3 = build_detector(cfg);
  DetectorSink i1(*d1), i2(*d2), i3(*d3);
  enforce::ReputationLedger l1(pol), l2(pol), l3(pol);
  EnforcingSink s1(i1, l1), s2(i2, l2), s3(i3, l3);
  const auto clicks = make_clicks_v2(50'000, 4, 808);
  run_sink_identity(s1, s2, s3, clicks, "enforcing");
  EXPECT_GT(s3.rejected(), 0u)
      << "no click was ever wire-rejected; the scenario did not exercise "
         "enforcement";
  EXPECT_EQ(s1.rejected(), s2.rejected());
  EXPECT_EQ(s1.rejected(), s3.rejected());
}

// ------------------------------------------------------------- failover

// Controlled failover, in process, at the million-click scale the issue
// demands: 1.1M clicks split across the primary's life and the promoted
// follower's; the concatenated wire verdict stream must equal an oracle
// that never failed over — zero verdicts lost, zero flipped.
TEST(ReplicationFailover, PromoteServesWithZeroVerdictLossAtMillionScale) {
  const DetectorConfig cfg = gbf_config();
  adnet::DetectorPool ppool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink psink(ppool);
  adnet::DetectorPool fpool([cfg](std::uint32_t) { return build_detector(cfg); });
  PoolSink fsink(fpool);

  const auto clicks = make_clicks(1, 1'100'000, 909);
  const std::span<const wire::ClickRecord> all(clicks);
  const auto phase1 = all.first(700'000);
  const auto phase2 = all.subspan(700'000);

  std::vector<bool> verdicts;
  verdicts.reserve(clicks.size());
  {
    ReplicatedPrimary primary(psink);
    Standby standby(fsink);
    standby.start(primary.repl_port);

    BlockingClient client;
    client.connect("127.0.0.1", primary.ingest_port);
    client.handshake();
    std::vector<bool> got;
    send_and_collect(client, phase1, wire::kMaxClicksPerBatch, got);
    ASSERT_EQ(got.size(), phase1.size());
    verdicts.insert(verdicts.end(), got.begin(), got.end());

    // The primary "fails" (gracefully here; the CLI test below covers the
    // SIGTERM + SIGUSR1 choreography): drain, wait for the standby.
    primary.drain();
    ASSERT_TRUE(wait_caught_up(standby.applier, primary.log, 60'000))
        << standby.follower->last_error();
    standby.stop();
    primary.source.stop();
    EXPECT_EQ(standby.applier.clicks_applied(), phase1.size());
  }

  // Promote: the follower's sink starts serving behind a fresh server.
  {
    IngestServer promoted(fsink, {});
    const std::uint16_t port = promoted.listen("127.0.0.1", 0);
    std::thread loop([&promoted] { promoted.run(); });
    BlockingClient client;
    client.connect("127.0.0.1", port);
    client.handshake();
    std::vector<bool> got;
    send_and_collect(client, phase2, wire::kMaxClicksPerBatch, got);
    ASSERT_EQ(got.size(), phase2.size());
    verdicts.insert(verdicts.end(), got.begin(), got.end());
    promoted.stop();
    loop.join();
    (void)promoted.drain();
  }

  ASSERT_EQ(verdicts.size(), clicks.size());
  const auto expected = oracle_verdicts(cfg, clicks);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < clicks.size(); ++i) {
    if (verdicts[i] != expected[i] && ++mismatches == 1) {
      ADD_FAILURE() << "first verdict mismatch at click " << i
                    << " (phase " << (i < phase1.size() ? 1 : 2) << ")";
    }
  }
  EXPECT_EQ(mismatches, 0u) << "failover lost or flipped verdicts";
}

// ------------------------------------------------------------ ppcd CLI

std::string ppcd_bin() { return PPCD_BIN; }

constexpr const char* kCliSinkFlags[] = {
    "--sink=sharded", "--window=jumping:512:4", "--memory-mib=1",
    "--shards=2"};

DetectorConfig cli_cfg() {
  DetectorConfig cfg;
  cfg.window = parse_window_spec("jumping:512:4");
  cfg.memory_bits = std::uint64_t{1} << 23;
  cfg.shards = 2;
  return cfg;
}

/// fork+exec a ppcd with stdout/stderr appended to `log_path`; the test
/// keeps the pid so it can deliver the SIGTERM/SIGUSR1 choreography a real
/// operator would.
pid_t spawn_ppcd(const std::vector<std::string>& extra_args,
                 const std::string& log_path) {
  std::vector<std::string> args{ppcd_bin()};
  for (const char* f : kCliSinkFlags) args.push_back(f);
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd =
      ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  ::dup2(fd, 1);
  ::dup2(fd, 2);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);
}

/// Polls `log_path` until `marker` appears; returns the full log so far
/// ("" on timeout).
std::string wait_for_marker(const std::string& log_path,
                            const std::string& marker, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string log = slurp(log_path);
    if (log.find(marker) != std::string::npos) return log;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return "";
}

/// "…<marker>127.0.0.1:PORT…" → PORT.
std::uint16_t port_after(const std::string& log, const std::string& marker) {
  const std::size_t at = log.find(marker + "127.0.0.1:");
  if (at == std::string::npos) return 0;
  return static_cast<std::uint16_t>(
      std::stoul(log.substr(at + marker.size() + 10)));
}

int reap(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

// Full operator choreography against real ppcd processes: a replicating
// primary and a --follow standby; clicks flow; SIGTERM fells the primary
// (which waits for follower acks before exiting); SIGUSR1 promotes the
// standby, which then serves the rest of the stream itself. Every verdict
// across both processes must match one oracle, the primary's drain
// snapshot must equal the oracle at the failover point, and the promoted
// follower's final snapshot must equal the oracle at the end.
TEST(ReplicationCli, Sigusr1FailoverPreservesEveryVerdictAndSnapshotByte) {
  const std::string dir = ::testing::TempDir();
  const std::string p_log = dir + "/repl_cli_primary.log";
  const std::string f_log = dir + "/repl_cli_follower.log";
  const std::string p_snap = dir + "/repl_cli_primary.snap";
  const std::string f_snap = dir + "/repl_cli_follower.snap";
  for (const auto& f : {p_log, f_log, p_snap, f_snap}) std::remove(f.c_str());

  const pid_t primary = spawn_ppcd(
      {"--listen=127.0.0.1:0", "--replicate-listen=127.0.0.1:0",
       "--snapshot=" + p_snap},
      p_log);
  std::string log = wait_for_marker(p_log, "replicating on", 15'000);
  ASSERT_FALSE(log.empty()) << "primary never came up: " << slurp(p_log);
  const std::uint16_t ingest_port = port_after(log, "listening on ");
  const std::uint16_t repl_port = port_after(log, "replicating on ");
  ASSERT_NE(ingest_port, 0);
  ASSERT_NE(repl_port, 0);

  const pid_t follower = spawn_ppcd(
      {"--listen=127.0.0.1:0",
       "--follow=127.0.0.1:" + std::to_string(repl_port),
       "--snapshot=" + f_snap},
      f_log);
  log = wait_for_marker(f_log, "standby on", 15'000);
  ASSERT_FALSE(log.empty()) << "follower never came up: " << slurp(f_log);
  const std::uint16_t standby_port = port_after(log, "standby on ");
  ASSERT_NE(standby_port, 0);

  // Phase 1: 20k clicks into the primary.
  const auto clicks = make_clicks(1, 30'000, 111);
  const std::span<const wire::ClickRecord> all(clicks);
  const auto phase1 = all.first(20'000);
  const auto phase2 = all.subspan(20'000);
  std::vector<bool> verdicts;
  {
    BlockingClient client;
    client.connect("127.0.0.1", ingest_port);
    client.handshake();
    std::vector<bool> got;
    send_and_collect(client, phase1, 500, got);
    ASSERT_EQ(got.size(), phase1.size());
    verdicts = std::move(got);
  }

  // The primary dies. Its drain waits for follower acks (up to 10 s), so
  // once it has exited the standby provably holds every phase-1 click.
  ASSERT_EQ(::kill(primary, SIGTERM), 0);
  ASSERT_EQ(reap(primary), 0);
  log = slurp(p_log);
  EXPECT_NE(log.find("ppcd: replication:"), std::string::npos) << log;
  EXPECT_EQ(log.find("had not acknowledged"), std::string::npos)
      << "primary exited before the follower caught up: " << log;

  // Promote the standby and keep serving the same stream.
  ASSERT_EQ(::kill(follower, SIGUSR1), 0);
  log = wait_for_marker(f_log, "ppcd: promoted", 15'000);
  ASSERT_FALSE(log.empty()) << "SIGUSR1 did not promote: " << slurp(f_log);
  {
    BlockingClient client;
    client.connect("127.0.0.1", standby_port);
    client.handshake();
    std::vector<bool> got;
    send_and_collect(client, phase2, 500, got);
    ASSERT_EQ(got.size(), phase2.size());
    verdicts.insert(verdicts.end(), got.begin(), got.end());
  }
  ASSERT_EQ(::kill(follower, SIGTERM), 0);
  ASSERT_EQ(reap(follower), 0);
  log = slurp(f_log);
  EXPECT_NE(log.find("ppcd: drained"), std::string::npos) << log;

  // Zero verdict loss across the failover...
  const DetectorConfig cfg = cli_cfg();
  const auto expected = oracle_verdicts(cfg, clicks);
  ASSERT_EQ(verdicts.size(), clicks.size());
  for (std::size_t i = 0; i < clicks.size(); ++i) {
    ASSERT_EQ(verdicts[i], expected[i])
        << "verdict diverged at click " << i << " (phase "
        << (i < phase1.size() ? 1 : 2) << ")";
  }

  // ...and byte-identical snapshots against oracles that never failed
  // over: the primary's at the failover point, the follower's at the end.
  {
    auto oracle = build_detector(cfg);
    for (const auto& c : phase1) oracle->offer(c.click_id, c.t_us);
    DetectorSink osink(*oracle);
    EXPECT_EQ(slurp(p_snap),
              snapshot_bytes(osink, "cli_oracle_phase1.snap"))
        << "primary drain snapshot diverged from the phase-1 oracle";
  }
  {
    auto oracle = build_detector(cfg);
    for (const auto& c : clicks) oracle->offer(c.click_id, c.t_us);
    DetectorSink osink(*oracle);
    EXPECT_EQ(slurp(f_snap), snapshot_bytes(osink, "cli_oracle_full.snap"))
        << "promoted follower snapshot diverged from the full-stream oracle";
  }
}

// A standby felled by SIGTERM (no promotion) drains cleanly and writes a
// snapshot byte-identical to the primary's — the warm-spare contract.
TEST(ReplicationCli, StandbySigtermDrainSnapshotMatchesPrimary) {
  const std::string dir = ::testing::TempDir();
  const std::string p_log = dir + "/repl_cli2_primary.log";
  const std::string f_log = dir + "/repl_cli2_follower.log";
  const std::string p_snap = dir + "/repl_cli2_primary.snap";
  const std::string f_snap = dir + "/repl_cli2_follower.snap";
  for (const auto& f : {p_log, f_log, p_snap, f_snap}) std::remove(f.c_str());

  const pid_t primary = spawn_ppcd(
      {"--listen=127.0.0.1:0", "--replicate-listen=127.0.0.1:0",
       "--snapshot=" + p_snap},
      p_log);
  std::string log = wait_for_marker(p_log, "replicating on", 15'000);
  ASSERT_FALSE(log.empty()) << slurp(p_log);
  const std::uint16_t ingest_port = port_after(log, "listening on ");
  const std::uint16_t repl_port = port_after(log, "replicating on ");

  const pid_t follower = spawn_ppcd(
      {"--listen=127.0.0.1:0",
       "--follow=127.0.0.1:" + std::to_string(repl_port),
       "--snapshot=" + f_snap},
      f_log);
  ASSERT_FALSE(wait_for_marker(f_log, "standby on", 15'000).empty())
      << slurp(f_log);

  const auto clicks = make_clicks(1, 15'000, 222);
  {
    BlockingClient client;
    client.connect("127.0.0.1", ingest_port);
    client.handshake();
    std::vector<bool> got;
    send_and_collect(client, clicks, 512, got);
    ASSERT_EQ(got.size(), clicks.size());
  }

  ASSERT_EQ(::kill(primary, SIGTERM), 0);
  ASSERT_EQ(reap(primary), 0);
  ASSERT_EQ(::kill(follower, SIGTERM), 0);
  ASSERT_EQ(reap(follower), 0);
  log = slurp(f_log);
  EXPECT_NE(log.find("ppcd: follower drained"), std::string::npos) << log;

  const std::string pb = slurp(p_snap);
  const std::string fb = slurp(f_snap);
  ASSERT_FALSE(pb.empty()) << slurp(p_log);
  EXPECT_EQ(pb, fb) << "standby drain snapshot diverged from the primary's";
}

}  // namespace
}  // namespace ppc::server
