// Million-ad multi-tenancy bench: sustained Zipf traffic over ~1M distinct
// ad ids through the adaptive TieredDetectorPool inside a FIXED memory cap,
// with per-tier FPR measured against a validity oracle and the zero-FN
// tier-move guarantee checked on every injected duplicate.
//
// Arms (interleaved per repetition so drift hits both equally):
//   tiered      — TieredDetectorPool under the cap: throughput, per-tier
//                 FPR, FN count (must be 0), promotions/demotions/deferrals.
//   naive_pool  — the pre-tiering DetectorPool with the SAME cap and the
//                 same per-ad plan: records how few ads fit before the cap
//                 throws length_error, and the bits a dedicated-detector
//                 deployment would need for the full universe.
//
// Oracle construction: every non-duplicate click uses a globally fresh id,
// so any `true` verdict on it is a false positive (attributed to the tier
// the ad occupied when offered). Injected duplicates replay an original
// that is BOTH within its ad's hot window (gap <= hot_window/2 ad-clicks)
// and within the tail window (gap <= tail_window/2 global arrivals), so by
// the tier-move guarantee (DESIGN.md "Tier moves") the pool must flag every
// one of them — a miss is a false negative, and the bench reports it.
//
//   ./multitenant_pool --paper --json=BENCH_multitenant_pool.json
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adnet/detector_pool.hpp"
#include "adnet/tiered_detector_pool.hpp"
#include "analysis/sizing.hpp"
#include "bench_util.hpp"
#include "core/detector_factory.hpp"
#include "stream/rng.hpp"
#include "stream/zipf.hpp"

#include <chrono>

using namespace ppc;

namespace {

struct Sizes {
  std::uint64_t universe;    ///< distinct ad ids in the Zipf population
  std::uint64_t clicks;      ///< stream length per repetition
  std::uint64_t tail_window; ///< tiered pool tail window (global clicks)
  std::size_t cap_bits;      ///< the fixed memory budget both arms get
  std::uint64_t epoch;       ///< maintenance cadence
};

struct StreamState {
  struct Original {
    std::uint32_t ad = 0;
    std::uint64_t id = 0;
    std::uint64_t global_idx = 0;
    std::uint64_t ad_idx = 0;
  };
  stream::Rng rng;
  stream::ZipfSampler zipf;
  std::vector<std::uint64_t> ad_clicks;       // per-ad click counters
  std::vector<Original> ring;                 // recent originals, global
  std::uint64_t fresh_id = std::uint64_t{1} << 40;
  std::uint64_t global_idx = 0;
  std::uint64_t sweep = 0;  ///< round-robin cursor over the whole universe

  StreamState(std::uint64_t seed, std::uint64_t universe)
      : rng(seed), zipf(universe, 1.1), ad_clicks(universe, 0) {
    ring.reserve(1 << 16);
  }
};

struct Click {
  std::uint32_t ad;
  std::uint64_t id;
  bool is_dup;  ///< ground truth: replay of an in-window original
  StreamState::Original cand;  ///< fresh clicks: the ring candidate
};

/// Generates the next click. ~12% of clicks replay a ring original that is
/// still inside BOTH windows (the oracle's "must detect" class); the rest
/// are globally fresh ids (the oracle's "must not flag" class).
Click next_click(StreamState& st, const Sizes& sz,
                 std::uint64_t hot_window_clicks) {
  Click c{};
  if (!st.ring.empty() && st.rng.chance(0.12)) {
    // A few probes into the ring; accept the first replayable original.
    // Gaps measure from the original INSERTION: a flagged duplicate is not
    // re-stamped by the filters (paper semantics — fraud doesn't extend
    // the original's window), so replays of replays don't reset the clock.
    for (int probe = 0; probe < 4; ++probe) {
      const StreamState::Original& o = st.ring[st.rng.below(st.ring.size())];
      if (st.global_idx - o.global_idx <= sz.tail_window / 2 &&
          st.ad_clicks[o.ad] - o.ad_idx <= hot_window_clicks / 2) {
        c.ad = o.ad;
        c.id = o.id;
        c.is_dup = true;
        break;
      }
    }
  }
  if (!c.is_dup) {
    // 70% Zipf (the skewed head that earns promotion), 30% a round-robin
    // sweep of the WHOLE universe — the long tail's trickle, guaranteeing
    // every one of the million ad ids actually reaches the pool.
    if (st.rng.chance(0.3)) {
      c.ad = static_cast<std::uint32_t>(st.sweep++ % st.ad_clicks.size());
    } else {
      c.ad = static_cast<std::uint32_t>(st.zipf.sample(st.rng));
    }
    c.id = st.fresh_id++;
    c.cand = StreamState::Original{c.ad, c.id, st.global_idx,
                                   st.ad_clicks[c.ad]};
  }
  ++st.ad_clicks[c.ad];
  ++st.global_idx;
  return c;
}

/// Admits a fresh click into the replay ring — called only when its verdict
/// came back `false`: a fresh click the filter (wrongly) flagged was NOT
/// inserted, so replaying it later would manufacture a phantom FN.
void remember_original(StreamState& st, const StreamState::Original& o) {
  if (st.ring.size() < (1u << 16)) {
    st.ring.push_back(o);
  } else {
    st.ring[st.rng.below(st.ring.size())] = o;
  }
}

struct TieredResult {
  double secs = 0;
  std::uint64_t fn = 0, dup_checked = 0;
  std::uint64_t fp_hot = 0, fresh_hot = 0;
  std::uint64_t fp_tail = 0, fresh_tail = 0;
  std::uint64_t distinct_ads = 0;  ///< universe members that actually clicked
  adnet::TierStats stats;
};

TieredResult run_tiered(const Sizes& sz, const adnet::TieredPoolOptions& opts,
                        std::uint64_t seed) {
  adnet::TieredDetectorPool pool(opts);
  StreamState st(seed, sz.universe);
  TieredResult r;

  constexpr std::size_t kChunk = 4096;
  std::vector<std::uint32_t> ads(kChunk);
  std::vector<std::uint64_t> ids(kChunk), times(kChunk);
  std::vector<char> dup(kChunk), hot(kChunk);
  std::vector<StreamState::Original> cands(kChunk);
  std::vector<char> out_raw(kChunk);
  const std::span<bool> out(reinterpret_cast<bool*>(out_raw.data()), kChunk);
  std::unordered_map<std::uint32_t, bool> hot_cache;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t done = 0; done < sz.clicks; done += kChunk) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kChunk,
                                                         sz.clicks - done));
    for (std::size_t i = 0; i < n; ++i) {
      const Click c = next_click(st, sz, opts.hot_window.length);
      ads[i] = c.ad;
      ids[i] = c.id;
      times[i] = done + i;
      dup[i] = c.is_dup ? 1 : 0;
      cands[i] = c.cand;
    }
    // Tier attribution for FPR accounting: one ad_is_hot query per distinct
    // ad per chunk (promotion mid-chunk misattributes at most one chunk's
    // worth of probes — noise, not bias, over millions of clicks).
    hot_cache.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto [it, fresh] = hot_cache.try_emplace(ads[i], false);
      if (fresh) it->second = pool.ad_is_hot(ads[i]);
      hot[i] = it->second ? 1 : 0;
    }
    pool.offer_batch(std::span<const std::uint32_t>(ads.data(), n),
                     std::span<const std::uint64_t>(ids.data(), n),
                     std::span<const std::uint64_t>(times.data(), n),
                     out.subspan(0, n));
    for (std::size_t i = 0; i < n; ++i) {
      if (dup[i] != 0) {
        ++r.dup_checked;
        if (!out[i]) ++r.fn;
      } else {
        if (hot[i] != 0) {
          ++r.fresh_hot;
          if (out[i]) ++r.fp_hot;
        } else {
          ++r.fresh_tail;
          if (out[i]) ++r.fp_tail;
        }
        if (!out[i]) remember_original(st, cands[i]);
      }
    }
  }
  r.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count();
  r.stats = pool.stats();
  for (const std::uint64_t c : st.ad_clicks) {
    if (c > 0) ++r.distinct_ads;
  }
  return r;
}

struct NaiveResult {
  std::uint64_t clicks_until_cap = 0;
  std::uint64_t ads_until_cap = 0;
  std::size_t per_ad_bits = 0;
  bool threw = false;
};

NaiveResult run_naive(const Sizes& sz, const adnet::TieredPoolOptions& opts,
                      std::uint64_t seed) {
  // Same per-ad plan the tiered pool gives its HOT ads, for every ad.
  const analysis::BudgetPlan plan =
      analysis::plan_budget(opts.hot_window, opts.hot_target_fpr);
  core::DetectorBudget budget;
  budget.total_memory_bits = plan.total_memory_bits;
  budget.hash_count = plan.hash_count;
  adnet::DetectorPoolOptions pool_opts;
  pool_opts.memory_cap_bits = sz.cap_bits;
  adnet::DetectorPool pool(
      [&](std::uint32_t) {
        return core::make_detector(opts.hot_window, budget);
      },
      pool_opts);

  NaiveResult r;
  r.per_ad_bits = plan.total_memory_bits;
  StreamState st(seed, sz.universe);
  constexpr std::size_t kChunk = 4096;
  std::vector<std::uint32_t> ads(kChunk);
  std::vector<std::uint64_t> ids(kChunk), times(kChunk);
  std::vector<char> dup(kChunk);
  std::vector<StreamState::Original> cands(kChunk);
  std::vector<char> out_raw(kChunk);
  const std::span<bool> out(reinterpret_cast<bool*>(out_raw.data()), kChunk);
  for (std::uint64_t done = 0; done < sz.clicks && !r.threw; done += kChunk) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kChunk,
                                                         sz.clicks - done));
    for (std::size_t i = 0; i < n; ++i) {
      const Click c = next_click(st, sz, opts.hot_window.length);
      ads[i] = c.ad;
      ids[i] = c.id;
      times[i] = done + i;
      dup[i] = c.is_dup ? 1 : 0;
      cands[i] = c.cand;
    }
    try {
      pool.offer_batch(std::span<const std::uint32_t>(ads.data(), n),
                       std::span<const std::uint64_t>(ids.data(), n),
                       std::span<const std::uint64_t>(times.data(), n),
                       out.subspan(0, n));
      r.clicks_until_cap += n;
      for (std::size_t i = 0; i < n; ++i) {
        if (dup[i] == 0 && !out[i]) remember_original(st, cands[i]);
      }
    } catch (const std::length_error&) {
      r.threw = true;  // atomic rejection: none of this chunk was offered
    }
  }
  r.ads_until_cap = pool.size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::Args::parse(argc, argv);

  Sizes sz;
  sz.universe = args.scaled(std::uint64_t{1} << 20);  // 1M ads at --paper
  sz.clicks = args.scaled(std::uint64_t{1} << 23);
  sz.tail_window = args.scaled(std::uint64_t{1} << 20);
  sz.cap_bits = static_cast<std::size_t>(
      args.scaled(std::uint64_t{1} << 29));  // 64 MiB at --paper
  sz.epoch = std::max<std::uint64_t>(4096, args.scaled(std::uint64_t{1} << 16));

  adnet::TieredPoolOptions opts;
  opts.memory_cap_bits = sz.cap_bits;
  opts.hot_window = core::WindowSpec::sliding_count(4096);
  opts.hot_target_fpr = 1e-4;
  opts.tail_window_clicks = sz.tail_window;
  opts.tail_target_fpr = 1e-3;
  opts.epoch_clicks = sz.epoch;
  opts.hh_capacity = 1024;

  benchutil::JsonSeriesWriter json("multitenant_pool", args.json);
  json.set_meta("hw_threads",
                static_cast<double>(std::thread::hardware_concurrency()));
  json.set_meta("cpu_model", benchutil::cpu_model_string());
  json.set_meta("universe", static_cast<double>(sz.universe));
  json.set_meta("clicks", static_cast<double>(sz.clicks));
  json.set_meta("memory_cap_bits", static_cast<double>(sz.cap_bits));
  json.set_meta("tail_window", static_cast<double>(sz.tail_window));
  json.set_meta("hot_window", 4096.0);
  json.set_meta("hot_target_fpr", opts.hot_target_fpr);
  json.set_meta("tail_target_fpr", opts.tail_target_fpr);

  std::printf("multitenant_pool: %llu Zipf(1.1) ads, %llu clicks/rep, cap %.1f"
              " Mbit\n\n",
              static_cast<unsigned long long>(sz.universe),
              static_cast<unsigned long long>(sz.clicks),
              static_cast<double>(sz.cap_bits) / 1e6);
  benchutil::print_header({"series", "rep", "mclicks/s", "fn", "fpr_hot",
                           "fpr_tail", "hot_ads", "mem_mbit"});

  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(rep);

    const TieredResult t = run_tiered(sz, opts, seed);
    const double mcps = static_cast<double>(sz.clicks) / t.secs / 1e6;
    const double fpr_hot =
        t.fresh_hot > 0
            ? static_cast<double>(t.fp_hot) / static_cast<double>(t.fresh_hot)
            : 0.0;
    const double fpr_tail =
        t.fresh_tail > 0 ? static_cast<double>(t.fp_tail) /
                               static_cast<double>(t.fresh_tail)
                         : 0.0;
    std::printf("%13s ", "tiered");
    benchutil::print_row({static_cast<double>(rep), mcps,
                          static_cast<double>(t.fn), fpr_hot, fpr_tail,
                          static_cast<double>(t.stats.hot_ads),
                          static_cast<double>(t.stats.memory_bits) / 1e6});
    json.add("tiered",
             {{"rep", static_cast<double>(rep)},
              {"mclicks_per_s", mcps},
              {"distinct_ads", static_cast<double>(t.distinct_ads)},
              {"false_negatives", static_cast<double>(t.fn)},
              {"dup_checked", static_cast<double>(t.dup_checked)},
              {"fpr_hot", fpr_hot},
              {"fresh_hot", static_cast<double>(t.fresh_hot)},
              {"fpr_tail", fpr_tail},
              {"fresh_tail", static_cast<double>(t.fresh_tail)},
              {"hot_ads", static_cast<double>(t.stats.hot_ads)},
              {"memory_bits", static_cast<double>(t.stats.memory_bits)},
              {"memory_cap_bits",
               static_cast<double>(t.stats.memory_cap_bits)},
              {"promotions", static_cast<double>(t.stats.promotions)},
              {"demotions", static_cast<double>(t.stats.demotions)},
              {"deferrals",
               static_cast<double>(t.stats.promotion_deferrals)}});

    const NaiveResult nv = run_naive(sz, opts, seed);
    const double naive_bits_universe =
        static_cast<double>(nv.per_ad_bits) *
        static_cast<double>(sz.universe);
    std::printf("%13s   cap %s after %llu ads / %llu clicks; dedicated "
                "detectors for all %llu ads would need %.0f Mbit\n",
                "naive_pool", nv.threw ? "threw" : "held",
                static_cast<unsigned long long>(nv.ads_until_cap),
                static_cast<unsigned long long>(nv.clicks_until_cap),
                static_cast<unsigned long long>(sz.universe),
                naive_bits_universe / 1e6);
    json.add("naive_pool",
             {{"rep", static_cast<double>(rep)},
              {"ads_until_cap", static_cast<double>(nv.ads_until_cap)},
              {"clicks_until_cap",
               static_cast<double>(nv.clicks_until_cap)},
              {"per_ad_bits", static_cast<double>(nv.per_ad_bits)},
              {"bits_needed_universe", naive_bits_universe},
              {"hit_length_error", nv.threw ? 1.0 : 0.0}});

    if (t.fn != 0) {
      std::fprintf(stderr,
                   "FN VIOLATION: rep %d missed %llu in-window duplicates\n",
                   rep, static_cast<unsigned long long>(t.fn));
    }
  }

  std::printf(
      "\n(tiered serves the whole stream inside the cap; naive_pool is the\n"
      " pre-tiering DetectorPool with the same cap and per-ad plan, which\n"
      " stops at its first over-budget first-seen ad with length_error.)\n");
  json.write();
  return 0;
}
