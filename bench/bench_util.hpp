// Shared helpers for the figure-reproduction binaries: a tiny CLI parser
// (--paper / --scale=<log2 shift> / --json=<path> / --threads=<n>), aligned
// table printing, and a machine-readable JSON series writer, so every bench
// emits the same style of series the paper plots — and a BENCH_*.json
// trajectory future PRs can diff against.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ppc::benchutil {

/// Parsed command line. The figure benches default to a scaled-down run
/// (same k·n/m ratios as the paper, smaller N) so `for b in bench/*; do $b;
/// done` finishes quickly; `--paper` restores the paper's exact sizes.
struct Args {
  bool paper = false;
  /// log2 of the down-scaling factor applied to N and m (default 16 means
  /// N = 2^20 becomes 2^(20-4)=2^16 when scale_shift=4).
  int scale_shift = 4;
  /// When non-empty, the bench also writes its series as JSON here.
  std::string json;
  /// Thread budget for parallel benches (0 = the bench's own default).
  int threads = 0;

  static void print_usage(const char* argv0) {
    std::printf(
        "usage: %s [--paper] [--scale=<shift>] [--json=<path>] "
        "[--threads=<n>]\n"
        "  --paper         run at the paper's exact sizes (N=2^20)\n"
        "  --scale=<s>     divide N and m by 2^s for quick runs "
        "(default 4)\n"
        "  --json=<path>   also write the series as machine-readable JSON\n"
        "  --threads=<n>   thread budget for parallel benches\n",
        argv0);
  }

  /// Extracts the arguments this library understands and compacts argv so
  /// the remainder can go to another parser (google-benchmark keeps flags
  /// like --benchmark_filter). Does not reject anything.
  static Args parse_known(int& argc, char** argv) {
    Args args;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      char* a = argv[i];
      if (std::strcmp(a, "--paper") == 0) {
        args.paper = true;
      } else if (std::strncmp(a, "--scale=", 8) == 0) {
        args.scale_shift = std::atoi(a + 8);
        if (args.scale_shift < 0 || args.scale_shift > 40) {
          // A shift ≥ 64 is UB (on x86 it silently wraps to *no* scaling);
          // anything past 40 zeroes every realistic paper size anyway.
          std::fprintf(stderr,
                       "--scale=%d out of range [0, 40] (log2 shift)\n",
                       args.scale_shift);
          std::exit(2);
        }
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        args.json = a + 7;
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        args.threads = std::atoi(a + 10);
      } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        print_usage(argv[0]);
        std::exit(0);
      } else {
        argv[kept++] = a;
        continue;
      }
    }
    argc = kept;
    if (args.paper) args.scale_shift = 0;
    return args;
  }

  /// Strict variant for the plain figure binaries: unknown args are fatal.
  static Args parse(int argc, char** argv) {
    Args args = parse_known(argc, argv);
    for (int i = 1; i < argc; ++i) {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
    return args;
  }

  /// Scales a paper-sized quantity down by the configured shift.
  std::uint64_t scaled(std::uint64_t paper_value) const {
    return paper_value >> scale_shift;
  }
};

/// Fixed-width table printing: header then rows of doubles/ints.
inline void print_rule(std::size_t cols, int width = 14) {
  for (std::size_t i = 0; i < cols; ++i) {
    for (int j = 0; j < width; ++j) std::fputc('-', stdout);
    std::fputc(i + 1 == cols ? '\n' : '+', stdout);
  }
}

inline void print_header(const std::vector<std::string>& cols,
                         int width = 14) {
  for (const auto& c : cols) std::printf("%*s ", width - 1, c.c_str());
  std::fputc('\n', stdout);
  print_rule(cols.size(), width);
}

inline void print_cell(double v, int width = 14) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    std::printf("%*lld ", width - 1, static_cast<long long>(v));
  } else {
    std::printf("%*.*g ", width - 1, 4, v);
  }
}

inline void print_row(const std::vector<double>& vals, int width = 14) {
  for (double v : vals) print_cell(v, width);
  std::fputc('\n', stdout);
}

/// Best-effort CPU model string (Linux /proc/cpuinfo); empty when unknown.
/// Recorded next to throughput numbers so a BENCH_*.json from one host is
/// never silently compared against another host's.
inline std::string cpu_model_string() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "";
  std::string model;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        const char* p = colon + 1;
        while (*p == ' ' || *p == '\t') ++p;
        model = p;
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == '\r')) {
          model.pop_back();
        }
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

/// Machine-readable output for the perf trajectory: every bench that takes
/// --json=<path> appends rows here and the destructor (or write()) emits
///
///   { "bench": "<name>",
///     "meta": { "<key>": <number-or-string>, ... },   // when set_meta used
///     "rows": [ {"series": "...", "<field>": <number>, ...}, ... ] }
///
/// Numbers are finite doubles (NaN/Inf become null); integral values print
/// without a decimal point so downstream tooling can diff runs textually.
class JsonSeriesWriter {
 public:
  /// A writer with an empty path is disabled: add() is a no-op, nothing is
  /// written. Benches can therefore call it unconditionally.
  JsonSeriesWriter(std::string bench_name, std::string path)
      : bench_(std::move(bench_name)), path_(std::move(path)) {}

  JsonSeriesWriter(const JsonSeriesWriter&) = delete;
  JsonSeriesWriter& operator=(const JsonSeriesWriter&) = delete;

  ~JsonSeriesWriter() {
    try {
      write();
    } catch (...) {  // a destructor must not throw; the error was reported
    }
  }

  bool enabled() const noexcept { return !path_.empty(); }

  /// Records a host/run metadata entry (numeric), emitted once in a
  /// "meta" object ahead of the rows. Later calls with the same key win.
  void set_meta(const std::string& key, double value) {
    if (!enabled()) return;
    set_meta_raw(key, number(value));
  }
  /// String metadata entry (e.g. the CPU model).
  void set_meta(const std::string& key, const std::string& value) {
    if (!enabled()) return;
    set_meta_raw(key, "\"" + escaped(value) + "\"");
  }

  /// Appends one row: a series label plus numeric fields, in call order.
  void add(const std::string& series,
           std::initializer_list<std::pair<const char*, double>> fields) {
    if (!enabled()) return;
    Row row;
    row.series = series;
    row.fields.assign(fields.begin(), fields.end());
    rows_.push_back(std::move(row));
  }

  /// Same, for field lists built at runtime (e.g. gbench counters).
  void add(const std::string& series,
           std::vector<std::pair<std::string, double>> fields) {
    if (!enabled()) return;
    Row row;
    row.series = series;
    for (auto& [k, v] : fields) row.fields.emplace_back(std::move(k), v);
    rows_.push_back(std::move(row));
  }

  /// Writes the file (idempotent; also run by the destructor).
  /// @throws std::runtime_error if the file cannot be written.
  void write() {
    if (!enabled() || written_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("JsonSeriesWriter: cannot open " + path_);
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",", escaped(bench_).c_str());
    if (!meta_.empty()) {
      std::fprintf(f, "\n  \"meta\": {");
      for (std::size_t i = 0; i < meta_.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     escaped(meta_[i].first).c_str(), meta_[i].second.c_str());
      }
      std::fprintf(f, "},");
    }
    std::fprintf(f, "\n  \"rows\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"series\": \"%s\"", i == 0 ? "" : ",",
                   escaped(rows_[i].series).c_str());
      for (const auto& [key, value] : rows_[i].fields) {
        std::fprintf(f, ", \"%s\": %s", escaped(key).c_str(),
                     number(value).c_str());
      }
      std::fputc('}', f);
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (!ok) throw std::runtime_error("JsonSeriesWriter: write failed");
    written_ = true;
    std::printf("wrote %s (%zu rows)\n", path_.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string series;
    std::vector<std::pair<std::string, double>> fields;
  };

  void set_meta_raw(const std::string& key, std::string json_value) {
    for (auto& [k, v] : meta_) {
      if (k == key) {
        v = std::move(json_value);
        return;
      }
    }
    meta_.emplace_back(key, std::move(json_value));
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';  // control chars never appear in series names; flatten
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  static std::string number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
        v > -1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    return buf;
  }

  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> meta_;  ///< key → JSON
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace ppc::benchutil
