// Shared helpers for the figure-reproduction binaries: a tiny CLI parser
// (--paper / --scale=<log2 shift> / key=value overrides) and aligned table
// printing, so every bench emits the same style of series the paper plots.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace ppc::benchutil {

/// Parsed command line. The figure benches default to a scaled-down run
/// (same k·n/m ratios as the paper, smaller N) so `for b in bench/*; do $b;
/// done` finishes quickly; `--paper` restores the paper's exact sizes.
struct Args {
  bool paper = false;
  /// log2 of the down-scaling factor applied to N and m (default 16 means
  /// N = 2^20 becomes 2^(20-4)=2^16 when scale_shift=4).
  int scale_shift = 4;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--paper") == 0) {
        args.paper = true;
      } else if (std::strncmp(a, "--scale=", 8) == 0) {
        args.scale_shift = std::atoi(a + 8);
      } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        std::printf(
            "usage: %s [--paper] [--scale=<shift>]\n"
            "  --paper         run at the paper's exact sizes (N=2^20)\n"
            "  --scale=<s>     divide N and m by 2^s for quick runs "
            "(default 4)\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s (try --help)\n", a);
        std::exit(2);
      }
    }
    if (args.paper) args.scale_shift = 0;
    return args;
  }

  /// Scales a paper-sized quantity down by the configured shift.
  std::uint64_t scaled(std::uint64_t paper_value) const {
    return paper_value >> scale_shift;
  }
};

/// Fixed-width table printing: header then rows of doubles/ints.
inline void print_rule(std::size_t cols, int width = 14) {
  for (std::size_t i = 0; i < cols; ++i) {
    for (int j = 0; j < width; ++j) std::fputc('-', stdout);
    std::fputc(i + 1 == cols ? '\n' : '+', stdout);
  }
}

inline void print_header(const std::vector<std::string>& cols,
                         int width = 14) {
  for (const auto& c : cols) std::printf("%*s ", width - 1, c.c_str());
  std::fputc('\n', stdout);
  print_rule(cols.size(), width);
}

inline void print_cell(double v, int width = 14) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    std::printf("%*lld ", width - 1, static_cast<long long>(v));
  } else {
    std::printf("%*.*g ", width - 1, 4, v);
  }
}

inline void print_row(const std::vector<double>& vals, int width = 14) {
  for (double v : vals) print_cell(v, width);
  std::fputc('\n', stdout);
}

}  // namespace ppc::benchutil
