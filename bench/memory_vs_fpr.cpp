// Memory-accounting table (the quantitative backdrop of §3.3 and §4.2):
// for one window size and a sweep of FP targets, the bits each approach
// needs — GBF, TBF, the two Metwally schemes, and the exact hash table.
//
// The punchline the paper argues qualitatively: per window element, GBF
// pays ~1.1 optimal Bloom bits, TBF pays an O(log N) factor over a plain
// Bloom filter, the Metwally jumping scheme pays counter widths AND needs
// its main filter sized for all N elements, and the sliding-CBF scheme
// pays 64 bits of raw identifier per element on top of its filter.
#include <cstdio>

#include "analysis/sizing.hpp"
#include "analysis/theory.hpp"
#include "bench_util.hpp"

using namespace ppc;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t n = args.scaled(1u << 20);
  const std::uint32_t q = 8;

  std::printf(
      "Memory (MiB) to guard a window of N=%llu clicks, by FP target\n"
      "(GBF: jumping Q=%u; TBF: sliding, C=N-1; Metwally-jump: main filter\n"
      "sized for its own FP target on all N; sliding-CBF & exact include\n"
      "their 64-bit-per-element identifier storage)\n\n",
      static_cast<unsigned long long>(n), q);

  benchutil::print_header({"target_fpr", "GBF", "TBF", "Metwally-jump",
                           "sliding-CBF", "exact"});

  for (const double target : {0.05, 0.01, 0.001, 0.0001}) {
    const auto gbf = analysis::plan_gbf(n, q, target);
    const auto tbf = analysis::plan_tbf(n, target);

    // Metwally jumping: the main filter holds all N window elements, so it
    // must be sized like one big Bloom filter for the target; counters are
    // 4-bit in the subs and log2(N)-bit in the main.
    const double m_cells =
        static_cast<double>(analysis::bloom_bits_for(
            static_cast<double>(n), target));  // cells, not bits
    const double metwally_bits =
        analysis::metwally_memory_bits(m_cells, q, 4,
                                       analysis::tbf_entry_bits(n, 1));

    // Sliding CBF: filter for N elements at the target + 65 bits/element.
    const double sliding_cbf_bits =
        m_cells * 4 + static_cast<double>(n) * 65;

    // Exact detector: ~64-bit id + validity bit per element, plus the map.
    const double exact_bits = static_cast<double>(n) * (65 + 64);

    const double mib = 8.0 * (1 << 20);
    benchutil::print_row({target,
                          static_cast<double>(gbf.total_bits) / mib,
                          static_cast<double>(tbf.total_bits) / mib,
                          metwally_bits / mib, sliding_cbf_bits / mib,
                          exact_bits / mib});
  }

  // The dimension the §2.4 criticism actually turns on: schemes that
  // retain identifiers scale with identifier size; the filters do not.
  // (A real click identification is an IP + cookie + ad tuple or a URL —
  // hundreds of bits — and hashing it away is exactly what the filter
  // schemes do and the retain-the-ids scheme cannot.)
  std::printf(
      "\nMemory (MiB) at FP target 0.001 as the retained click\n"
      "identification grows (TBF/GBF are flat by construction):\n\n");
  benchutil::print_header(
      {"id_bits", "GBF", "TBF", "sliding-CBF", "exact"});
  const auto gbf_plan = analysis::plan_gbf(n, q, 0.001);
  const auto tbf_plan = analysis::plan_tbf(n, 0.001);
  const double filter_cells =
      static_cast<double>(analysis::bloom_bits_for(
          static_cast<double>(n), 0.001));
  for (const double id_bits : {64.0, 256.0, 1024.0, 4096.0}) {
    const double mib = 8.0 * (1 << 20);
    benchutil::print_row(
        {id_bits, static_cast<double>(gbf_plan.total_bits) / mib,
         static_cast<double>(tbf_plan.total_bits) / mib,
         (filter_cells * 4 + static_cast<double>(n) * (id_bits + 1)) / mib,
         static_cast<double>(n) * (id_bits + 65) / mib});
  }
  std::printf(
      "\ncrossover: with hash-compressed 64-bit identifiers the queue-based\n"
      "schemes are compact; with real click identifications (IP+cookie+ad\n"
      "tuples, URLs) their per-element retention dominates and the TBF's\n"
      "fixed O(m log N) footprint wins — the paper's §2.4 argument.\n");
  return 0;
}
