// Memory-accounting table (the quantitative backdrop of §3.3 and §4.2):
// for one window size and a sweep of FP targets, the bits each approach
// needs — GBF, TBF, the two Metwally schemes, and the exact hash table.
//
// The punchline the paper argues qualitatively: per window element, GBF
// pays ~1.1 optimal Bloom bits, TBF pays an O(log N) factor over a plain
// Bloom filter, the Metwally jumping scheme pays counter widths AND needs
// its main filter sized for all N elements, and the sliding-CBF scheme
// pays 64 bits of raw identifier per element on top of its filter.
// The second half is empirical: GBF, TBF, and APBF built by the factory at
// EQUAL total memory, their FP rates measured on the paper's distinct-id
// protocol and on a duplicated stream against the validity oracle (which
// also proves the zero-FN guarantee run by run).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/sizing.hpp"
#include "analysis/theory.hpp"
#include "analysis/validity_oracle.hpp"
#include "bench_util.hpp"
#include "core/detector_factory.hpp"
#include "stream/rng.hpp"

using namespace ppc;

namespace {

/// Identifier stream with tunable duplication (the tests' make_id_stream,
/// gtest-free): each arrival repeats a recent id with probability
/// `dup_prob`, lookback uniform in [1, max_gap].
std::vector<std::uint64_t> dup_stream(std::uint64_t count, double dup_prob,
                                      std::uint64_t max_gap,
                                      std::uint64_t seed) {
  std::vector<std::uint64_t> ids;
  ids.reserve(count);
  stream::Rng rng(seed);
  std::uint64_t fresh = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!ids.empty() && rng.chance(dup_prob)) {
      const std::uint64_t gap = 1 + rng.below(std::min(max_gap, i));
      ids.push_back(ids[i - gap]);
    } else {
      ids.push_back((seed << 40) + fresh++);
    }
  }
  return ids;
}

struct HeadToHeadArm {
  const char* label;
  core::DetectorBackend backend;
  core::WindowSpec window;
  std::unique_ptr<analysis::ValidityOracle> (*oracle)(std::uint64_t n);
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t n = args.scaled(1u << 20);
  const std::uint32_t q = 8;

  benchutil::JsonSeriesWriter json("memory_vs_fpr", args.json);
  json.set_meta("hw_threads",
                static_cast<double>(std::thread::hardware_concurrency()));
  json.set_meta("cpu_model", benchutil::cpu_model_string());
  json.set_meta("window_n", static_cast<double>(n));

  std::printf(
      "Memory (MiB) to guard a window of N=%llu clicks, by FP target\n"
      "(GBF: jumping Q=%u; TBF: sliding, C=N-1; Metwally-jump: main filter\n"
      "sized for its own FP target on all N; sliding-CBF & exact include\n"
      "their 64-bit-per-element identifier storage)\n\n",
      static_cast<unsigned long long>(n), q);

  benchutil::print_header({"target_fpr", "GBF", "TBF", "Metwally-jump",
                           "sliding-CBF", "exact"});

  for (const double target : {0.05, 0.01, 0.001, 0.0001}) {
    const auto gbf = analysis::plan_gbf(n, q, target);
    const auto tbf = analysis::plan_tbf(n, target);

    // Metwally jumping: the main filter holds all N window elements, so it
    // must be sized like one big Bloom filter for the target; counters are
    // 4-bit in the subs and log2(N)-bit in the main.
    const double m_cells =
        static_cast<double>(analysis::bloom_bits_for(
            static_cast<double>(n), target));  // cells, not bits
    const double metwally_bits =
        analysis::metwally_memory_bits(m_cells, q, 4,
                                       analysis::tbf_entry_bits(n, 1));

    // Sliding CBF: filter for N elements at the target + 65 bits/element.
    const double sliding_cbf_bits =
        m_cells * 4 + static_cast<double>(n) * 65;

    // Exact detector: ~64-bit id + validity bit per element, plus the map.
    const double exact_bits = static_cast<double>(n) * (65 + 64);

    const double mib = 8.0 * (1 << 20);
    benchutil::print_row({target,
                          static_cast<double>(gbf.total_bits) / mib,
                          static_cast<double>(tbf.total_bits) / mib,
                          metwally_bits / mib, sliding_cbf_bits / mib,
                          exact_bits / mib});
  }

  // The dimension the §2.4 criticism actually turns on: schemes that
  // retain identifiers scale with identifier size; the filters do not.
  // (A real click identification is an IP + cookie + ad tuple or a URL —
  // hundreds of bits — and hashing it away is exactly what the filter
  // schemes do and the retain-the-ids scheme cannot.)
  std::printf(
      "\nMemory (MiB) at FP target 0.001 as the retained click\n"
      "identification grows (TBF/GBF are flat by construction):\n\n");
  benchutil::print_header(
      {"id_bits", "GBF", "TBF", "sliding-CBF", "exact"});
  const auto gbf_plan = analysis::plan_gbf(n, q, 0.001);
  const auto tbf_plan = analysis::plan_tbf(n, 0.001);
  const double filter_cells =
      static_cast<double>(analysis::bloom_bits_for(
          static_cast<double>(n), 0.001));
  for (const double id_bits : {64.0, 256.0, 1024.0, 4096.0}) {
    const double mib = 8.0 * (1 << 20);
    benchutil::print_row(
        {id_bits, static_cast<double>(gbf_plan.total_bits) / mib,
         static_cast<double>(tbf_plan.total_bits) / mib,
         (filter_cells * 4 + static_cast<double>(n) * (id_bits + 1)) / mib,
         static_cast<double>(n) * (id_bits + 65) / mib});
  }
  std::printf(
      "\ncrossover: with hash-compressed 64-bit identifiers the queue-based\n"
      "schemes are compact; with real click identifications (IP+cookie+ad\n"
      "tuples, URLs) their per-element retention dominates and the TBF's\n"
      "fixed O(m log N) footprint wins — the paper's §2.4 argument.\n");

  // ------------------------- empirical head-to-head at equal memory ------
  // Each backend guards the same N-click window with the same total bits,
  // built through make_detector (the factory's memory split included). Two
  // measurements per point: the paper's §5 distinct-id FP protocol, and a
  // 30%-duplicate stream against the validity oracle — whose false-negative
  // count must be ZERO for every backend, every budget (theorem check).
  std::printf(
      "\nMeasured FP rate at EQUAL total memory, window N=%llu\n"
      "(GBF jumping Q=%u; TBF & APBF sliding; APBF k inherits --hashes,\n"
      "l=8; fpr_distinct: %llu distinct ids, FP over trailing %llu;\n"
      "fpr_oracle/fn: 30%%-duplicate stream vs the validity oracle)\n\n",
      static_cast<unsigned long long>(n), q,
      static_cast<unsigned long long>(6 * n),
      static_cast<unsigned long long>(3 * n));
  benchutil::print_header({"bits/elem", "backend", "mem_bits", "fpr_distinct",
                           "fpr_oracle", "false_neg"});

  const HeadToHeadArm arms[] = {
      {"GBF", core::DetectorBackend::kGbf, core::WindowSpec::jumping_count(n, q),
       [](std::uint64_t win) -> std::unique_ptr<analysis::ValidityOracle> {
         return std::make_unique<analysis::JumpingOracle>(win, 8);
       }},
      {"TBF", core::DetectorBackend::kTbf, core::WindowSpec::sliding_count(n),
       [](std::uint64_t win) -> std::unique_ptr<analysis::ValidityOracle> {
         return std::make_unique<analysis::SlidingOracle>(win);
       }},
      {"APBF", core::DetectorBackend::kApbf, core::WindowSpec::sliding_count(n),
       [](std::uint64_t win) -> std::unique_ptr<analysis::ValidityOracle> {
         return std::make_unique<analysis::SlidingOracle>(win);
       }},
  };

  bool fn_violation = false;
  for (const std::uint64_t bpe : {8ull, 12ull, 16ull, 24ull}) {
    for (const auto& arm : arms) {
      core::DetectorBudget budget;
      budget.backend = arm.backend;
      budget.total_memory_bits = bpe * n;

      auto fpr_detector = core::make_detector(arm.window, budget);
      analysis::DistinctRunConfig cfg{6 * n, 3 * n, bpe};
      const double fpr_distinct =
          analysis::measure_fpr_distinct(*fpr_detector, cfg);

      auto oracle_detector = core::make_detector(arm.window, budget);
      auto oracle = arm.oracle(n);
      const auto ids = dup_stream(6 * n, 0.3, n, 17 + bpe);
      const auto counts =
          analysis::run_self_consistency(*oracle_detector, *oracle, ids);
      if (counts.false_negative != 0) fn_violation = true;

      std::printf("%13llu %13s %13llu %13.4g %13.4g %13llu \n",
                  static_cast<unsigned long long>(bpe),
                  oracle_detector->name().c_str(),
                  static_cast<unsigned long long>(
                      oracle_detector->memory_bits()),
                  fpr_distinct, counts.false_positive_rate(),
                  static_cast<unsigned long long>(counts.false_negative));
      json.add(arm.label,
               {{"bits_per_elem", static_cast<double>(bpe)},
                {"mem_bits",
                 static_cast<double>(oracle_detector->memory_bits())},
                {"fpr_distinct", fpr_distinct},
                {"fpr_oracle", counts.false_positive_rate()},
                {"false_negatives",
                 static_cast<double>(counts.false_negative)}});
    }
  }
  if (fn_violation) {
    std::fprintf(stderr,
                 "FATAL: a backend produced false negatives inside its "
                 "covered window — zero-FN theorem violated\n");
    return 1;
  }
  std::printf(
      "\nreading: the GBF posts the lowest FP rate per bit, but it answers\n"
      "a COARSER question (jumping window, Q sub-windows); the TBF's exact\n"
      "sliding expiry costs ~log2(N) bits per entry, so at these budgets\n"
      "its table holds far fewer than N entries and saturates. The APBF\n"
      "sits between: true sliding-window semantics (within one generation,\n"
      "~1/l of the window) at 1-bit slices, giving FP rates one to two\n"
      "orders below the TBF at equal memory — the trade the APBF paper\n"
      "promises. false_neg is 0 on every row: all three keep the zero-FN\n"
      "guarantee regardless of budget.\n");
  return 0;
}
