// Hash-substrate microbenchmarks: raw hash throughput and the cost of the
// three IndexFamily strategies. Justifies the library default (one Murmur3
// evaluation + Kirsch–Mitzenmacher double hashing) with numbers: k indices
// for the price of ~one hash, vs k full hashes for the "independent"
// strategy the FP-rate tests use as the gold standard.
#include <benchmark/benchmark.h>

#include <string>

#include <vector>

#include "hashing/fnv.hpp"
#include "hashing/index_family.hpp"
#include "hashing/murmur3.hpp"
#include "hashing/simd_fmix.hpp"
#include "hashing/tabulation.hpp"
#include "hashing/xxhash.hpp"

namespace {

using namespace ppc::hashing;

std::string payload(std::size_t size) { return std::string(size, 'x'); }

void BM_Murmur3(benchmark::State& state) {
  const std::string data = payload(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(murmur3_x64_128(data, seed++));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur3)->Arg(8)->Arg(40)->Arg(256)->Arg(4096);

void BM_Xxh64(benchmark::State& state) {
  const std::string data = payload(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xxh64(data, seed++));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Xxh64)->Arg(8)->Arg(40)->Arg(256)->Arg(4096);

void BM_Fnv1a(benchmark::State& state) {
  const std::string data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fnv1a64(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(8)->Arg(40)->Arg(256);

void BM_Tabulation(benchmark::State& state) {
  TabulationHash64 t(1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Tabulation);

void BM_IndexFamily(benchmark::State& state) {
  const auto strategy = static_cast<IndexStrategy>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  IndexFamily family(k, 1u << 20, strategy, 7);
  std::uint64_t key = 0;
  std::uint64_t idx[kMaxHashFunctions];
  for (auto _ : state) {
    family.indices(key++, std::span<std::uint64_t>(idx, k));
    benchmark::DoNotOptimize(idx[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexFamily)
    ->ArgsProduct({{static_cast<int>(IndexStrategy::kDoubleHashing),
                    static_cast<int>(IndexStrategy::kIndependentHashes),
                    static_cast<int>(IndexStrategy::kTabulation)},
                   {4, 10, 20}});

// The batched hash stage at each dispatch level: what the offer_batch
// rings actually pay per key. Compare the kScalar rows against
// BM_IndexFamily's double-hashing rows (per-key scalar calls) to see the
// loop-overhead saving, and against the kAvx2/kAvx512 rows for the
// vectorization saving. Levels above what the CPU supports are skipped.
void BM_IndicesBatch(benchmark::State& state) {
  const auto strategy = static_cast<IndexStrategy>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto level = static_cast<simd::Level>(state.range(2));
  if (level > simd::detected_level()) {
    state.SkipWithError("level unsupported on this CPU");
    return;
  }
  simd::set_level_override(level);
  IndexFamily family(k, 1u << 20, strategy, 7);
  constexpr std::size_t kKeys = 4096;
  std::vector<std::uint64_t> keys(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) keys[i] = i * 0x9e3779b97f4a7c15ull;
  std::vector<std::uint64_t> out(kKeys * k);
  for (auto _ : state) {
    family.indices_batch(keys, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  simd::clear_level_override();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKeys));
  state.SetLabel(simd::level_name(level));
}
BENCHMARK(BM_IndicesBatch)
    ->ArgsProduct({{static_cast<int>(IndexStrategy::kDoubleHashing),
                    static_cast<int>(IndexStrategy::kCacheLineBlocked)},
                   {4, 7},
                   {static_cast<int>(simd::Level::kScalar),
                    static_cast<int>(simd::Level::kAvx2),
                    static_cast<int>(simd::Level::kAvx512)}});

}  // namespace

BENCHMARK_MAIN();
