// Hash-substrate microbenchmarks: raw hash throughput and the cost of the
// three IndexFamily strategies. Justifies the library default (one Murmur3
// evaluation + Kirsch–Mitzenmacher double hashing) with numbers: k indices
// for the price of ~one hash, vs k full hashes for the "independent"
// strategy the FP-rate tests use as the gold standard.
#include <benchmark/benchmark.h>

#include <string>

#include "hashing/fnv.hpp"
#include "hashing/index_family.hpp"
#include "hashing/murmur3.hpp"
#include "hashing/tabulation.hpp"
#include "hashing/xxhash.hpp"

namespace {

using namespace ppc::hashing;

std::string payload(std::size_t size) { return std::string(size, 'x'); }

void BM_Murmur3(benchmark::State& state) {
  const std::string data = payload(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(murmur3_x64_128(data, seed++));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur3)->Arg(8)->Arg(40)->Arg(256)->Arg(4096);

void BM_Xxh64(benchmark::State& state) {
  const std::string data = payload(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xxh64(data, seed++));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Xxh64)->Arg(8)->Arg(40)->Arg(256)->Arg(4096);

void BM_Fnv1a(benchmark::State& state) {
  const std::string data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fnv1a64(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(8)->Arg(40)->Arg(256);

void BM_Tabulation(benchmark::State& state) {
  TabulationHash64 t(1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Tabulation);

void BM_IndexFamily(benchmark::State& state) {
  const auto strategy = static_cast<IndexStrategy>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  IndexFamily family(k, 1u << 20, strategy, 7);
  std::uint64_t key = 0;
  std::uint64_t idx[kMaxHashFunctions];
  for (auto _ : state) {
    family.indices(key++, std::span<std::uint64_t>(idx, k));
    benchmark::DoNotOptimize(idx[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexFamily)
    ->ArgsProduct({{static_cast<int>(IndexStrategy::kDoubleHashing),
                    static_cast<int>(IndexStrategy::kIndependentHashes),
                    static_cast<int>(IndexStrategy::kTabulation)},
                   {4, 10, 20}});

}  // namespace

BENCHMARK_MAIN();
