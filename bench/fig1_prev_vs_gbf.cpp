// Figure 1 — "Comparison between Previous Algorithm and GBF Algorithm".
//
// Paper setup: jumping window, Q = 31 sub-windows, per-filter size
// m = 2^20, window size N swept from 2^15 to 2^20; the previous algorithm
// is the Metwally et al. counting-Bloom-filter jumping scheme (§3.3), whose
// membership check against the *main* filter behaves like all N window
// elements inserted into one m-cell filter. The claim: its FP rate explodes
// toward 1 as N → m while GBF stays orders of magnitude lower.
//
// The paper does not state k for this figure and no single k reproduces
// both quoted endpoints exactly (see DESIGN.md); we therefore print the
// exact analytic curves for k ∈ {1, 2, 4, 8} for both algorithms, plus a
// simulated arm at k = 4 using the real data structures. At k = 1 the two
// coincide (expected: Q filters of N/Q elements ≈ one filter of N at one
// probe); for every k ≥ 2 the paper's qualitative claim holds with a wide
// margin.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/theory.hpp"
#include "baseline/metwally_jumping_detector.hpp"
#include "bench_util.hpp"
#include "core/group_bloom_filter.hpp"

using namespace ppc;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t m = args.scaled(1u << 20);
  const std::uint32_t q = 31;
  const std::size_t sim_k = 4;
  const int log_n_lo = 15 - args.scale_shift;
  const int log_n_hi = 20 - args.scale_shift;

  std::printf("Figure 1: FP rate vs window size, Q=%u, m=%llu%s\n", q,
              static_cast<unsigned long long>(m),
              args.paper ? " (paper scale)" : " (scaled; --paper for full)");
  std::printf("prev = Metwally counting-BF jumping scheme; gbf = this paper\n\n");

  benchutil::print_header({"log2(N)", "prev k=1", "gbf k=1", "prev k=2",
                           "gbf k=2", "prev k=4", "gbf k=4", "prev k=8",
                           "gbf k=8", "prev sim k=4", "gbf sim k=4"},
                          13);

  for (int log_n = log_n_lo; log_n <= log_n_hi; ++log_n) {
    const std::uint64_t n = 1ull << log_n;
    std::vector<double> row{static_cast<double>(log_n + args.scale_shift)};
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
      row.push_back(analysis::metwally_main_fpr(static_cast<double>(m),
                                                static_cast<double>(n), k));
      row.push_back(analysis::gbf_fpr_upper(static_cast<double>(m),
                                            static_cast<double>(n), q, k));
    }

    // Simulated arms: distinct stream, FPs counted over the trailing half
    // (the paper's stabilization protocol, shortened for the sweep).
    const auto w = core::WindowSpec::jumping_count(n, q);
    analysis::DistinctRunConfig cfg{6 * n, 3 * n, 1};

    baseline::MetwallyJumpingDetector::Options mo;
    mo.cells = m;
    mo.sub_counter_bits = 4;
    mo.main_counter_bits = 8;
    mo.hash_count = sim_k;
    baseline::MetwallyJumpingDetector prev(w, mo);
    row.push_back(analysis::measure_fpr_distinct(prev, cfg));

    core::GroupBloomFilter::Options go;
    go.bits_per_subfilter = m;
    go.hash_count = sim_k;
    core::GroupBloomFilter gbf(w, go);
    row.push_back(analysis::measure_fpr_distinct(gbf, cfg));

    benchutil::print_row(row, 13);
  }

  std::printf(
      "\nShape check (paper quotes at N=2^20, m=2^20: prev ~0.62, GBF "
      "~0.008):\n"
      "prev saturates toward 1 as N approaches m; GBF stays 1-3 orders of\n"
      "magnitude lower at every k >= 2. See EXPERIMENTS.md for the k\n"
      "ambiguity discussion.\n");
  return 0;
}
