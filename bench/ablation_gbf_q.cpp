// Ablation — the GBF sub-window count Q at a fixed total memory budget M.
//
// Q is the jumping window's resolution knob: more sub-windows track the
// true sliding window more closely, but each of the Q+1 slots gets only
// M/(Q+1) bits, so per-filter FP rates rise and more filters are probed.
// This table quantifies the §4 handoff point ("when there are too many
// sub-windows ... TBF is a better choice") by printing the TBF built from
// the SAME memory budget as the last row.
#include <chrono>
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/theory.hpp"
#include "bench_util.hpp"
#include "core/detector_factory.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/timing_bloom_filter.hpp"

using namespace ppc;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t n = args.scaled(1u << 20);
  const std::uint64_t total_bits = args.scaled(1ull << 24);
  const std::size_t k = 7;

  std::printf(
      "GBF ablation: sub-window count Q at fixed memory M=%llu bits; "
      "N=%llu, k=%zu%s\n\n",
      static_cast<unsigned long long>(total_bits),
      static_cast<unsigned long long>(n), k,
      args.paper ? " (paper scale)" : " (scaled; --paper for full)");
  benchutil::print_header(
      {"Q", "m_per_filter", "theory_fpr", "measured_fpr", "ns/elem"});

  for (const std::uint32_t q : {1u, 2u, 4u, 8u, 16u, 31u, 63u}) {
    core::GroupBloomFilter::Options opts;
    opts.bits_per_subfilter = total_bits / (q + 1);
    opts.hash_count = k;
    core::GroupBloomFilter gbf(core::WindowSpec::jumping_count(n, q), opts);

    const auto start = std::chrono::steady_clock::now();
    analysis::DistinctRunConfig cfg{6 * n, 3 * n, q};
    const double fpr = analysis::measure_fpr_distinct(gbf, cfg);
    const auto elapsed = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    benchutil::print_row(
        {static_cast<double>(q),
         static_cast<double>(opts.bits_per_subfilter),
         analysis::gbf_fpr_mean(static_cast<double>(opts.bits_per_subfilter),
                                static_cast<double>(n), q, k),
         fpr, elapsed / static_cast<double>(6 * n)});
  }

  // The same memory budget spent on a TBF (what the factory would pick for
  // a sliding window or a large-Q jumping window).
  {
    core::DetectorBudget budget;
    budget.total_memory_bits = total_bits;
    budget.hash_count = k;
    auto tbf = core::make_detector(core::WindowSpec::sliding_count(n), budget);
    const auto start = std::chrono::steady_clock::now();
    analysis::DistinctRunConfig cfg{6 * n, 3 * n, 99};
    const double fpr = analysis::measure_fpr_distinct(*tbf, cfg);
    const auto elapsed = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf("\nTBF from the same budget (sliding, exact expiry):\n");
    benchutil::print_row({-1.0, static_cast<double>(tbf->memory_bits()), 0.0,
                          fpr, elapsed / static_cast<double>(6 * n)});
  }

  std::printf(
      "\nExpected: FP rate grows with Q at fixed memory (smaller filters,\n"
      "more probes). The TBF row shows the flip side: at the SAME absolute\n"
      "budget its log2(2N)-bit entries leave too few cells, so it trades a\n"
      "much higher FP rate for exact per-element expiry — to match the\n"
      "GBF's FP target it needs the multiplier shown by memory_vs_fpr.\n");
  return 0;
}
