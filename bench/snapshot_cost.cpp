// Snapshot cost: what a checkpoint actually costs the serving path.
//
// Sweeps filter memory over {2^20, 2^23, 2^26} bits (scaled by --scale) for
// every snapshot-capable layer — GBF, TBF, ShardedDetector in mutex and
// engine mode (the engine arm pays an extra in-band quiesce of its owner
// threads), and a 64-ad DetectorPool — and measures:
//   * save_us / restore_us — in-memory serialize/deserialize wall time
//     (best of 5, after warming the filter to a realistic fill);
//   * bytes — the serialized size, CRC envelope included;
//   * file_us — for the sharded arms, IngestServer::save_sink_snapshot's
//     full atomic file protocol (temp + write + fsync + rename), i.e. what
//     a SIGTERM drain adds before the process may exit.
// The checked-in BENCH_snapshot_cost.json is this bench's output; a PR that
// bloats the format or slows the quiesce shows up as a diff there.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adnet/detector_pool.hpp"
#include "bench_util.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/sharded_detector.hpp"
#include "core/timing_bloom_filter.hpp"
#include "runtime/thread_pool.hpp"
#include "server/ingest_server.hpp"
#include "stream/rng.hpp"

namespace {

using namespace ppc;

constexpr std::uint32_t kQ = 8;
constexpr std::size_t kHashes = 7;
constexpr std::size_t kShards = 8;
constexpr std::size_t kOwners = 4;
constexpr std::size_t kPoolAds = 64;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Warm a detector to a realistic fill: one window's worth of arrivals.
void warm(core::DuplicateDetector& d, std::uint64_t arrivals,
          std::uint64_t seed) {
  stream::Rng rng(seed);
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    d.offer(rng.next(), i);
  }
}

struct Cost {
  double save_us = 0;
  double restore_us = 0;
  double bytes = 0;
};

/// Best-of-`reps` in-memory save + restore-into-fresh-instance timing.
template <typename MakeFn>
Cost measure(const MakeFn& make, std::uint64_t warm_arrivals,
             int reps = 5) {
  auto live = make();
  warm(*live, warm_arrivals, 7);
  Cost cost;
  cost.save_us = 1e18;
  cost.restore_us = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    std::ostringstream out(std::ios::binary);
    auto t0 = std::chrono::steady_clock::now();
    live->save(out);
    cost.save_us = std::min(cost.save_us, seconds_since(t0) * 1e6);
    const std::string bytes = out.str();
    cost.bytes = static_cast<double>(bytes.size());

    auto fresh = make();
    std::istringstream in(bytes, std::ios::binary);
    t0 = std::chrono::steady_clock::now();
    fresh->restore(in);
    cost.restore_us = std::min(cost.restore_us, seconds_since(t0) * 1e6);
  }
  return cost;
}

core::ShardedDetector::Factory shard_factory(std::uint64_t total_bits) {
  const std::uint64_t window = total_bits / 10;  // design-point m ≈ 10n
  return [total_bits, window](std::size_t) {
    core::GroupBloomFilter::Options opts;
    opts.bits_per_subfilter = total_bits / kShards / kQ;
    opts.hash_count = kHashes;
    return std::make_unique<core::GroupBloomFilter>(
        core::WindowSpec::jumping_count(
            std::max<std::uint64_t>(kQ, window / kShards), kQ),
        opts);
  };
}

/// The drain-time file protocol (temp + write + fsync + rename) for a
/// detector behind a DetectorSink; best-of-`reps` microseconds.
double measure_file_us(core::DuplicateDetector& d, int reps = 5) {
  server::DetectorSink sink(d);
  const std::string path = "/tmp/ppc_snapshot_cost.snap";
  double best = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    server::IngestServer::save_sink_snapshot(sink, path);
    best = std::min(best, seconds_since(t0) * 1e6);
  }
  std::remove(path.c_str());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  benchutil::JsonSeriesWriter json("snapshot_cost", args.json);
  json.set_meta("hw_threads",
                static_cast<double>(runtime::ThreadPool::hardware_threads()));
  json.set_meta("cpu_model", benchutil::cpu_model_string());

  std::printf("snapshot cost (save/restore wall time vs filter memory; "
              "file = atomic write + fsync of the sharded arm)\n\n");
  std::printf("%10s %12s %12s %12s %12s %12s\n", "series", "mem_bits",
              "bytes", "save_us", "restore_us", "MB/s(save)");
  benchutil::print_rule(6, 13);

  for (const int shift : {20, 23, 26}) {
    const std::uint64_t bits = args.scaled(std::uint64_t{1} << shift);
    const std::uint64_t window = bits / 10;

    const auto report = [&](const std::string& series, const Cost& c) {
      std::printf("%10s %12llu %12.0f %12.1f %12.1f %12.1f\n", series.c_str(),
                  static_cast<unsigned long long>(bits), c.bytes, c.save_us,
                  c.restore_us, c.bytes / c.save_us);  // bytes/us == MB/s
      json.add(series, {{"mem_bits", static_cast<double>(bits)},
                        {"bytes", c.bytes},
                        {"save_us", c.save_us},
                        {"restore_us", c.restore_us}});
    };

    report("gbf", measure(
                      [&] {
                        core::GroupBloomFilter::Options opts;
                        opts.bits_per_subfilter = bits / kQ;
                        opts.hash_count = kHashes;
                        return std::make_unique<core::GroupBloomFilter>(
                            core::WindowSpec::jumping_count(
                                std::max<std::uint64_t>(kQ, window), kQ),
                            opts);
                      },
                      window));

    report("tbf", measure(
                      [&] {
                        core::TimingBloomFilter::Options opts;
                        // Equal PAYLOAD memory: entries ~ bits / entry width.
                        opts.entries = std::max<std::uint64_t>(64, bits / 16);
                        opts.hash_count = kHashes;
                        return std::make_unique<core::TimingBloomFilter>(
                            core::WindowSpec::sliding_count(
                                std::max<std::uint64_t>(64, window)),
                            opts);
                      },
                      window));

    const auto make_sharded = [&](core::ShardedDetector::EngineMode mode) {
      return [&, mode] {
        core::ShardedDetector::Options opts;
        opts.engine = mode;
        opts.threads = kOwners;
        return std::make_unique<core::ShardedDetector>(
            kShards, shard_factory(bits), opts);
      };
    };
    report("sharded", measure(make_sharded(
                                  core::ShardedDetector::EngineMode::kMutex),
                              window));
    // Engine arm: same bytes, plus the in-band owner-thread quiesce on
    // every save.
    report("engine", measure(make_sharded(
                                 core::ShardedDetector::EngineMode::kSpscOwner),
                             window));

    // Drain-time file protocol on the mutex sharded arm (fsync dominates
    // at small sizes — that is the point of recording it).
    {
      core::ShardedDetector d(kShards, shard_factory(bits));
      warm(d, window, 7);
      const double file_us = measure_file_us(d);
      std::printf("%10s %12llu %12s %12.1f %12s %12s\n", "file",
                  static_cast<unsigned long long>(bits), "-", file_us, "-",
                  "-");
      json.add("file", {{"mem_bits", static_cast<double>(bits)},
                        {"save_us", file_us}});
    }

    // Pool of small per-ad filters: many nested sections, per-ad overhead.
    {
      const adnet::DetectorPool::Factory factory = [&](std::uint32_t) {
        core::GroupBloomFilter::Options opts;
        opts.bits_per_subfilter =
            std::max<std::uint64_t>(64, bits / kPoolAds / kQ);
        opts.hash_count = kHashes;
        return std::make_unique<core::GroupBloomFilter>(
            core::WindowSpec::jumping_count(
                std::max<std::uint64_t>(kQ, window / kPoolAds), kQ),
            opts);
      };
      adnet::DetectorPool live(factory);
      stream::Rng rng(7);
      for (std::uint64_t i = 0; i < window; ++i) {
        live.offer(static_cast<std::uint32_t>(i % kPoolAds), rng.next(), i);
      }
      Cost c;
      c.save_us = 1e18;
      c.restore_us = 1e18;
      for (int rep = 0; rep < 5; ++rep) {
        std::ostringstream out(std::ios::binary);
        auto t0 = std::chrono::steady_clock::now();
        live.save(out);
        c.save_us = std::min(c.save_us, seconds_since(t0) * 1e6);
        const std::string bytes = out.str();
        c.bytes = static_cast<double>(bytes.size());

        adnet::DetectorPool fresh(factory);
        std::istringstream in(bytes, std::ios::binary);
        t0 = std::chrono::steady_clock::now();
        fresh.restore(in);
        c.restore_us = std::min(c.restore_us, seconds_since(t0) * 1e6);
      }
      report("pool64", c);
    }
  }
  json.write();
  return 0;
}
