// False-sharing microbench for the per-shard OpCounter padding.
//
// ShardedDetector keeps one OpCounter per shard; in engine mode each
// shard's owner thread bumps its counter on every instrumented filter op
// while neighbouring shards' owners do the same. If two shards' counters
// share a cache line, every increment is a coherence miss. This bench
// measures that directly: two threads each hammer their own OpCounter in
// two layouts —
//   adjacent — the counters packed back to back (they share lines);
//   padded   — each counter alignas(64) on its own line, the layout
//              ShardedDetector::Shard actually uses.
// The interesting output is the ratio; on a single-hardware-thread host
// the threads serialize and the ratio collapses to ~1 (noted in the
// output — don't read a padding conclusion off such a run).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "core/op_counter.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using ppc::core::OpCounter;

constexpr std::uint64_t kIncrements = 20'000'000;

/// Two counters packed like a naive std::vector<OpCounter> would.
struct AdjacentPair {
  OpCounter a;
  OpCounter b;
};

/// Two counters padded like ShardedDetector::Shard pads its per-shard one.
struct PaddedPair {
  alignas(64) OpCounter a;
  alignas(64) OpCounter b;
};

/// The instrumented hot-loop body shape: a handful of field bumps per
/// element, like one GBF probe records.
void hammer(OpCounter& ops) {
  for (std::uint64_t i = 0; i < kIncrements; ++i) {
    ops.word_reads += 1;
    if ((i & 7) == 0) ops.word_writes += 1;
    ops.hash_evals += 1;
  }
}

/// Runs the two-thread hammer on a counter pair; returns ns per increment
/// pair (lower is better).
template <typename Pair>
double run(Pair& pair) {
  const auto t0 = std::chrono::steady_clock::now();
  std::thread other([&pair] { hammer(pair.b); });
  hammer(pair.a);
  other.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return secs * 1e9 / static_cast<double>(kIncrements);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ppc::benchutil::Args::parse(argc, argv);
  const std::size_t hw = ppc::runtime::ThreadPool::hardware_threads();
  std::printf("op-counter false sharing: 2 threads x %llu increment "
              "rounds (hardware threads: %zu)\n",
              static_cast<unsigned long long>(kIncrements), hw);
  if (hw < 2) {
    std::printf("note: <2 hardware threads — the two hammer threads "
                "serialize, so the adjacent/padded ratio will read ~1.00 "
                "and says nothing about the padding.\n");
  }

  AdjacentPair adjacent;
  PaddedPair padded;
  // Warm-up pass, then best-of-3 on each layout, interleaved.
  run(adjacent);
  run(padded);
  double adj_ns = 1e300, pad_ns = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    adj_ns = std::min(adj_ns, run(adjacent));
    pad_ns = std::min(pad_ns, run(padded));
  }

  const double ratio = adj_ns / pad_ns;
  std::printf("%10s %14s\n", "layout", "ns/round");
  std::printf("%10s %14.2f\n", "adjacent", adj_ns);
  std::printf("%10s %14.2f\n", "padded", pad_ns);
  std::printf("adjacent/padded slowdown: %.2fx\n", ratio);

  ppc::benchutil::JsonSeriesWriter json("op_counter_falseshare", args.json);
  json.set_meta("hw_threads", static_cast<double>(hw));
  json.set_meta("cpu_model", ppc::benchutil::cpu_model_string());
  json.add("adjacent", {{"ns_per_round", adj_ns}});
  json.add("padded", {{"ns_per_round", pad_ns},
                      {"adjacent_over_padded", ratio}});
  json.write();
  return 0;
}
