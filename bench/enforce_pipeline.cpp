// enforce_pipeline — what does wire-level enforcement cost per click, and
// does the tier machine separate the scenarios it was built for?
//
// Three synthetic streams (the enforcement scenarios of stream/generators):
//   coordinated-botnet   32 bots ramping to 60% of traffic, fixed identities
//   low-and-slow         4 sources at ~45% per-source duplicate rate
//   nat-flash-crowd      thousands of real users behind one IP
//
// For each, clicks and exact duplicate verdicts are precomputed, then two
// arms run INTERLEAVED (A/B per repetition, so thermal/clock drift hits
// both equally):
//   no-enforcement   consume the verdict stream (the floor: what the
//                    detector pipeline already paid for)
//   enforcement      the EnforcingSink's per-click ledger work on top —
//                    decide() before the click, observe() after, rejected
//                    clicks skipping observe exactly as the sink does
//
// The table reports ns/click per arm, the overhead delta, and the end-state
// tier populations — the scenario-separation result (botnet blocked,
// low-and-slow discounted, NAT clean/flagged) the enforce_test asserts is
// reproduced here at bench scale.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "enforce/reputation_ledger.hpp"
#include "stream/click.hpp"
#include "stream/generators.hpp"

using namespace ppc;

namespace {

struct Scenario {
  std::string name;
  std::vector<std::uint32_t> ips;
  std::vector<std::uint64_t> times;
  std::vector<bool> dups;  ///< exact-oracle duplicate verdicts
};

Scenario materialize(const std::string& name, stream::ClickGenerator& gen,
                     std::size_t clicks) {
  Scenario s;
  s.name = name;
  s.ips.reserve(clicks);
  s.times.reserve(clicks);
  s.dups.reserve(clicks);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(clicks);
  for (std::size_t i = 0; i < clicks; ++i) {
    const stream::Click c = gen.next();
    s.ips.push_back(c.source_ip);
    s.times.push_back(c.time_us);
    s.dups.push_back(!seen.insert(stream::click_identifier(
                              c, stream::IdentifierPolicy::kIpCookieAndAd))
                          .second);
  }
  return s;
}

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The floor arm: consume the verdict stream. The accumulated count is
/// returned so the compiler cannot drop the loop.
std::uint64_t run_baseline(const Scenario& s) {
  std::uint64_t dups = 0;
  for (std::size_t i = 0; i < s.ips.size(); ++i) dups += s.dups[i] ? 1 : 0;
  return dups;
}

struct EnforceResult {
  std::uint64_t rejected = 0;
  enforce::ReputationLedger::Stats stats;
};

/// The enforcement arm: the EnforcingSink's per-click ledger protocol.
EnforceResult run_enforced(const Scenario& s,
                           const enforce::EnforcementPolicy& policy) {
  enforce::ReputationLedger ledger(policy);
  EnforceResult r;
  for (std::size_t i = 0; i < s.ips.size(); ++i) {
    if (ledger.decide(s.ips[i], 0, s.times[i]) == enforce::Tier::kBlocked) {
      ++r.rejected;  // rejected at the wire: no observe, as in the sink
      continue;
    }
    ledger.observe(s.ips[i], 0, s.dups[i], s.times[i]);
  }
  r.stats = ledger.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  // Paper-scale: 2^20 clicks per scenario; default quick run 2^16.
  const std::size_t clicks = args.scaled(std::uint64_t{1} << 20);
  const int reps = 5;

  // Thresholds scaled like enforce_test's: reachable within the run while
  // keeping the defaults' shape (strictly increasing rates and evidence).
  enforce::EnforcementPolicy policy;
  policy.flag_rate = 0.20;
  policy.discount_rate = 0.35;
  policy.block_rate = 0.55;
  policy.flag_min_duplicates = 16;
  policy.discount_min_duplicates = 64;
  policy.block_min_duplicates = 256;
  policy.blatant_rate = 0.90;
  policy.blatant_min_duplicates = 64;
  policy.rate_alpha = 1.0 / 64;
  policy.min_clicks = 32;
  policy.score_half_life_us = 30'000'000;
  policy.block_ttl_us = 60'000'000;

  std::vector<Scenario> scenarios;
  {
    stream::MixedTrafficStream::Options bg;
    bg.seed = 101;
    bg.user_count = 200'000;
    stream::CoordinatedBotnetStream::Options bo;
    bo.seed = 20260808;
    stream::CoordinatedBotnetStream botnet(
        std::make_unique<stream::MixedTrafficStream>(bg), bo);
    scenarios.push_back(materialize("coordinated-botnet", botnet, clicks));

    bg.seed = 102;
    stream::LowAndSlowFraudStream::Options lo;
    lo.seed = 20260808;
    stream::LowAndSlowFraudStream low(
        std::make_unique<stream::MixedTrafficStream>(bg), lo);
    scenarios.push_back(materialize("low-and-slow", low, clicks));

    stream::NatFlashCrowdStream::Options no;
    no.seed = 20260808;
    no.crowd_size = static_cast<std::uint32_t>(clicks * 2);  // never exhaust
    stream::NatFlashCrowdStream nat(no);
    scenarios.push_back(materialize("nat-flash-crowd", nat, clicks));
  }

  benchutil::JsonSeriesWriter json("enforce_pipeline", args.json);
  json.set_meta("cpu", benchutil::cpu_model_string());
  json.set_meta("hw_threads",
                static_cast<double>(std::thread::hardware_concurrency()));
  json.set_meta("clicks_per_scenario", static_cast<double>(clicks));
  json.set_meta("reps", reps);

  std::printf("enforce_pipeline: %zu clicks/scenario, %d interleaved reps\n\n",
              clicks, reps);
  benchutil::print_header({"scenario", "base ns/clk", "enf ns/clk",
                           "overhead ns", "rejected", "blocked", "discounted",
                           "flagged"},
                          14);

  for (const Scenario& s : scenarios) {
    const double n = static_cast<double>(s.ips.size());
    double best_base = 1e300, best_enf = 1e300;
    std::uint64_t sink = 0;
    EnforceResult result;
    for (int rep = 0; rep < reps; ++rep) {
      // Interleave the arms inside each repetition.
      const double t0 = now_ns();
      sink += run_baseline(s);
      const double t1 = now_ns();
      result = run_enforced(s, policy);
      const double t2 = now_ns();
      best_base = std::min(best_base, (t1 - t0) / n);
      best_enf = std::min(best_enf, (t2 - t1) / n);
    }
    if (sink == 0xdead) std::printf(" ");  // keep the baseline loop alive

    const auto& st = result.stats;
    std::printf("%13s ", s.name.c_str());
    benchutil::print_row({best_base, best_enf, best_enf - best_base,
                          static_cast<double>(result.rejected),
                          static_cast<double>(st.blocked),
                          static_cast<double>(st.discounted),
                          static_cast<double>(st.flagged)},
                         14);
    // The separation rows are the contract: botnet ends blocked,
    // low-and-slow ends discounted-or-worse, the NAT crowd ends unblocked.
    json.add(s.name, {{"ns_per_click_baseline", best_base},
                      {"ns_per_click_enforced", best_enf},
                      {"ns_overhead", best_enf - best_base},
                      {"rejected", static_cast<double>(result.rejected)},
                      {"sources", static_cast<double>(st.sources)},
                      {"blocked", static_cast<double>(st.blocked)},
                      {"discounted", static_cast<double>(st.discounted)},
                      {"flagged", static_cast<double>(st.flagged)},
                      {"promotions", static_cast<double>(st.promotions)},
                      {"demotions", static_cast<double>(st.demotions)}});
  }
  return 0;
}
