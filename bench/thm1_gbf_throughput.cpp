// Theorem 1(3) — GBF running time: "O(⌈Q/D⌉·k + m·Q/N) word operations per
// element in the worst case", i.e. essentially independent of Q while the
// grouped layout keeps all sub-filters in one word lane.
//
// google-benchmark suite comparing, across Q:
//   * GBF (grouped layout, this paper)
//   * the naive Q+1-separate-Bloom-filters deployment (§3.1's strawman,
//     whose probe cost grows with Q)
//   * the Metwally counting-filter scheme (O(m) burst at each jump)
//   * the exact hash-table detector (memory-hungry baseline)
// Counters report instrumented memory operations per element alongside
// wall-clock time.
#include <benchmark/benchmark.h>

#include "gbench_json.hpp"

#include "baseline/exact_detectors.hpp"
#include "baseline/metwally_jumping_detector.hpp"
#include "baseline/naive_jumping_bloom.hpp"
#include "core/group_bloom_filter.hpp"

namespace {

using namespace ppc;

constexpr std::uint64_t kWindow = 1 << 16;
constexpr std::size_t kHashes = 7;

// Size each sub-filter at its design point (k ≈ ln2·m/n → m ≈ 10·n for
// k=7, i.e. ~50% fill): this is the regime the paper's cost model assumes.
// Oversizing m would inflate GBF's incremental-cleaning share and let the
// naive deployment's early-exit probes look artificially cheap.
std::uint64_t bits_per_filter(std::uint32_t q) {
  return 10 * (kWindow / q);
}

template <typename Detector>
void run_detector(benchmark::State& state, Detector& detector) {
  core::OpCounter ops;
  detector.set_op_counter(&ops);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.offer(id++));
  }
  state.SetItemsProcessed(state.iterations());
  if (ops.total() > 0) {
    state.counters["mem_ops/elem"] =
        static_cast<double>(ops.total()) / static_cast<double>(state.iterations());
  }
  state.counters["memory_MiB"] =
      static_cast<double>(detector.memory_bits()) / 8.0 / (1 << 20);
}

void BM_GbfOffer(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  core::GroupBloomFilter::Options opts;
  opts.bits_per_subfilter = bits_per_filter(q);
  opts.hash_count = kHashes;
  core::GroupBloomFilter gbf(core::WindowSpec::jumping_count(kWindow, q),
                             opts);
  run_detector(state, gbf);
}
BENCHMARK(BM_GbfOffer)->Arg(4)->Arg(8)->Arg(16)->Arg(31)->Arg(63);

void BM_NaiveJumpingOffer(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  baseline::NaiveJumpingBloomDetector::Options opts;
  opts.bits_per_subfilter = bits_per_filter(q);
  opts.hash_count = kHashes;
  baseline::NaiveJumpingBloomDetector naive(
      core::WindowSpec::jumping_count(kWindow, q), opts);
  run_detector(state, naive);
}
BENCHMARK(BM_NaiveJumpingOffer)->Arg(4)->Arg(8)->Arg(16)->Arg(31)->Arg(63);

void BM_MetwallyOffer(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  baseline::MetwallyJumpingDetector::Options opts;
  opts.cells = bits_per_filter(q);  // same cell count; 4-8x the bits
  opts.hash_count = kHashes;
  baseline::MetwallyJumpingDetector prev(
      core::WindowSpec::jumping_count(kWindow, q), opts);
  run_detector(state, prev);
}
BENCHMARK(BM_MetwallyOffer)->Arg(4)->Arg(8)->Arg(31);

/// Batched GBF at a cache-hostile size (prefetch across elements).
void BM_GbfOfferBatch(benchmark::State& state) {
  constexpr std::uint64_t kBigWindow = 1 << 20;
  core::GroupBloomFilter::Options opts;
  opts.bits_per_subfilter = 10 * (kBigWindow / 8);  // ~1.6 MiB x 9 slots
  opts.hash_count = kHashes;
  core::GroupBloomFilter gbf(core::WindowSpec::jumping_count(kBigWindow, 8),
                             opts);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> ids(batch);
  std::vector<char> verdicts(batch);
  std::uint64_t next = 0;
  for (auto _ : state) {
    for (auto& id : ids) id = next++;
    if (batch == 1) {
      verdicts[0] = gbf.offer(ids[0]);
    } else {
      gbf.offer_batch(std::span<const std::uint64_t>(ids),
                      std::span<bool>(reinterpret_cast<bool*>(verdicts.data()),
                                      batch));
    }
    benchmark::DoNotOptimize(verdicts[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_GbfOfferBatch)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_ExactJumpingOffer(benchmark::State& state) {
  baseline::ExactJumpingDetector exact(
      core::WindowSpec::jumping_count(kWindow, 8));
  run_detector(state, exact);
}
BENCHMARK(BM_ExactJumpingOffer);

}  // namespace

// BENCHMARK_MAIN() plus --json=<path>: the Theorem 1 series lands in the
// same machine-readable trajectory as BENCH_sharded_throughput.json.
// --threads is rejected: these loops are single-threaded by design.
int main(int argc, char** argv) {
  return ppc::benchutil::gbench_main_with_json(
      argc, argv, "thm1_gbf_throughput", /*allow_threads=*/false);
}
