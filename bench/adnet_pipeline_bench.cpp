// End-to-end billing-pipeline throughput: clicks/second through the full
// BillingEngine (identifier extraction → duplicate detector → ledger) for
// each detector choice. This is the number an advertising network's
// capacity planning would care about.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "adnet/billing.hpp"
#include "adnet/detector_pool.hpp"
#include "baseline/exact_detectors.hpp"
#include "core/detector_factory.hpp"
#include "stream/generators.hpp"
#include "stream/rng.hpp"
#include "stream/zipf.hpp"

namespace {

using namespace ppc;

constexpr std::uint64_t kWindow = 1 << 16;

adnet::BillingEngine make_engine(
    std::unique_ptr<core::DuplicateDetector> detector) {
  adnet::BillingEngine engine(adnet::BillingConfig{}, std::move(detector));
  for (std::uint32_t ad = 0; ad < 64; ++ad) {
    engine.register_advertiser({.id = ad,
                                .name = "adv",
                                .bid_per_click = adnet::from_dollars(0.25),
                                .budget = adnet::from_dollars(1e9)});
  }
  for (std::uint32_t p = 0; p < 8; ++p) {
    engine.register_publisher({.id = p, .name = "pub"});
  }
  return engine;
}

void run_pipeline(benchmark::State& state,
                  std::unique_ptr<core::DuplicateDetector> detector) {
  auto engine = make_engine(std::move(detector));
  stream::MixedTrafficOptions gopts;
  gopts.user_count = 100'000;
  gopts.ad_count = 64;
  stream::MixedTrafficStream gen(gopts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.process(gen.next()));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rejected_dups"] =
      static_cast<double>(engine.rejected_duplicates());
}

void BM_Billing_TBF(benchmark::State& state) {
  core::DetectorBudget budget;
  budget.total_memory_bits = 1ull << 24;
  run_pipeline(state,
               core::make_detector(core::WindowSpec::sliding_count(kWindow),
                                   budget));
}
BENCHMARK(BM_Billing_TBF);

void BM_Billing_GBF(benchmark::State& state) {
  core::DetectorBudget budget;
  budget.total_memory_bits = 1ull << 24;
  run_pipeline(state,
               core::make_detector(core::WindowSpec::jumping_count(kWindow, 8),
                                   budget));
}
BENCHMARK(BM_Billing_GBF);

void BM_Billing_Exact(benchmark::State& state) {
  run_pipeline(state, std::make_unique<baseline::ExactSlidingDetector>(
                          core::WindowSpec::sliding_count(kWindow)));
}
BENCHMARK(BM_Billing_Exact);

// DetectorPool::offer_batch route path: Zipf-distributed ad ids over many
// pooled per-ad detectors, batches of `state.range(0)` clicks. Dominated by
// the per-batch ad-grouping pass plus the per-ad offer_batch pipelines —
// the number the pool's grouping scratch-table optimization moves.
void BM_Pool_OfferBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  core::DetectorBudget budget;
  budget.total_memory_bits = 1ull << 18;
  adnet::DetectorPool pool([budget](std::uint32_t) {
    return core::make_detector(core::WindowSpec::jumping_count(1 << 12, 8),
                               budget);
  });
  stream::Rng rng(42);
  const stream::ZipfSampler zipf(512, 1.1);
  std::vector<std::uint32_t> ads(batch);
  std::vector<core::ClickId> ids(batch);
  std::vector<char> verdicts(batch);
  std::uint64_t next_id = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < batch; ++i) {
      ads[i] = static_cast<std::uint32_t>(zipf.sample(rng));
      ids[i] = next_id++;
    }
    state.ResumeTiming();
    pool.offer_batch(ads, ids,
                     std::span<bool>(reinterpret_cast<bool*>(verdicts.data()),
                                     batch));
    benchmark::DoNotOptimize(verdicts.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Pool_OfferBatch)->Arg(256)->Arg(4096)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
