// End-to-end billing-pipeline throughput: clicks/second through the full
// BillingEngine (identifier extraction → duplicate detector → ledger) for
// each detector choice. This is the number an advertising network's
// capacity planning would care about.
#include <benchmark/benchmark.h>

#include <memory>

#include "adnet/billing.hpp"
#include "baseline/exact_detectors.hpp"
#include "core/detector_factory.hpp"
#include "stream/generators.hpp"

namespace {

using namespace ppc;

constexpr std::uint64_t kWindow = 1 << 16;

adnet::BillingEngine make_engine(
    std::unique_ptr<core::DuplicateDetector> detector) {
  adnet::BillingEngine engine(adnet::BillingConfig{}, std::move(detector));
  for (std::uint32_t ad = 0; ad < 64; ++ad) {
    engine.register_advertiser({.id = ad,
                                .name = "adv",
                                .bid_per_click = adnet::from_dollars(0.25),
                                .budget = adnet::from_dollars(1e9)});
  }
  for (std::uint32_t p = 0; p < 8; ++p) {
    engine.register_publisher({.id = p, .name = "pub"});
  }
  return engine;
}

void run_pipeline(benchmark::State& state,
                  std::unique_ptr<core::DuplicateDetector> detector) {
  auto engine = make_engine(std::move(detector));
  stream::MixedTrafficOptions gopts;
  gopts.user_count = 100'000;
  gopts.ad_count = 64;
  stream::MixedTrafficStream gen(gopts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.process(gen.next()));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rejected_dups"] =
      static_cast<double>(engine.rejected_duplicates());
}

void BM_Billing_TBF(benchmark::State& state) {
  core::DetectorBudget budget;
  budget.total_memory_bits = 1ull << 24;
  run_pipeline(state,
               core::make_detector(core::WindowSpec::sliding_count(kWindow),
                                   budget));
}
BENCHMARK(BM_Billing_TBF);

void BM_Billing_GBF(benchmark::State& state) {
  core::DetectorBudget budget;
  budget.total_memory_bits = 1ull << 24;
  run_pipeline(state,
               core::make_detector(core::WindowSpec::jumping_count(kWindow, 8),
                                   budget));
}
BENCHMARK(BM_Billing_GBF);

void BM_Billing_Exact(benchmark::State& state) {
  run_pipeline(state, std::make_unique<baseline::ExactSlidingDetector>(
                          core::WindowSpec::sliding_count(kWindow)));
}
BENCHMARK(BM_Billing_Exact);

}  // namespace

BENCHMARK_MAIN();
