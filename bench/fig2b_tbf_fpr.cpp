// Figure 2(b) — "False Positive Rate of TBF Algorithm over Sliding
// Windows": theoretical vs experimental FP rate as k sweeps 1..20.
//
// Paper setup (§5): N = 2^20 sliding window, m = 15,112,980 timestamp
// entries; 20·N distinct identifiers, false positives counted over the last
// 10·N arrivals. Quoted endpoint: k = 10 → FP ≈ 0.001.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/theory.hpp"
#include "bench_util.hpp"
#include "core/timing_bloom_filter.hpp"

using namespace ppc;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t n = args.scaled(1u << 20);
  const std::uint64_t m = args.scaled(15'112'980);

  std::printf("Figure 2(b): TBF FP rate vs k; N=%llu, m=%llu entries%s\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m),
              args.paper ? " (paper scale)" : " (scaled; --paper for full)");
  benchutil::print_header({"k", "theory", "experiment"});

  for (std::size_t k = 1; k <= 20; ++k) {
    core::TimingBloomFilter::Options opts;
    opts.entries = m;
    opts.hash_count = k;
    core::TimingBloomFilter tbf(core::WindowSpec::sliding_count(n), opts);
    analysis::DistinctRunConfig cfg{20 * n, 10 * n, k};
    const double measured = analysis::measure_fpr_distinct(tbf, cfg);
    benchutil::print_row(
        {static_cast<double>(k),
         analysis::tbf_fpr(static_cast<double>(m), static_cast<double>(n), k),
         measured});
  }

  std::printf(
      "\nPaper quote: k=10, m=15,112,980 -> FP about 0.001. The TBF behaves\n"
      "as a classical Bloom filter over the N active elements; expired-but-\n"
      "unreclaimed timestamps fail the activity check and cannot raise the\n"
      "rate.\n");
  return 0;
}
