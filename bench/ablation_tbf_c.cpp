// Ablation — the TBF wraparound slack C (§4.1): "a smaller C means less
// space requirement and larger operation time, and a larger C means larger
// space requirement and less operation time".
//
// Sweeps C at fixed window and entry count and reports the whole tradeoff
// surface: entry width, total memory, reclamation-scan stride, measured
// per-element latency, and the (unchanged) false-positive rate — the FP
// rate must be invariant in C, since C only affects *when* stale entries
// are reclaimed, never the activity verdict.
#include <chrono>
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_util.hpp"
#include "core/timing_bloom_filter.hpp"

using namespace ppc;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t n = args.scaled(1u << 20);
  const std::uint64_t m = args.scaled(15'112'980);
  const std::size_t k = 7;

  std::printf("TBF ablation: wraparound slack C; N=%llu, m=%llu, k=%zu%s\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m), k,
              args.paper ? " (paper scale)" : " (scaled; --paper for full)");
  benchutil::print_header({"C", "entry_bits", "memory_MiB", "scan/elem",
                           "ns/elem", "fpr"});

  for (const std::uint64_t c :
       {n / 64, n / 16, n / 4, n - 1, 2 * n, 8 * n}) {
    core::TimingBloomFilter::Options opts;
    opts.entries = m;
    opts.hash_count = k;
    opts.c = c;
    core::TimingBloomFilter tbf(core::WindowSpec::sliding_count(n), opts);

    const auto start = std::chrono::steady_clock::now();
    analysis::DistinctRunConfig cfg{8 * n, 4 * n, 1};  // same ids for every C
    const double fpr = analysis::measure_fpr_distinct(tbf, cfg);
    const auto elapsed = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    benchutil::print_row({static_cast<double>(c),
                          static_cast<double>(tbf.entry_bits()),
                          static_cast<double>(tbf.memory_bits()) / 8 / (1 << 20),
                          static_cast<double>(tbf.clean_stride()),
                          elapsed / static_cast<double>(8 * n), fpr});
  }

  std::printf(
      "\nExpected: scan/elem and ns/elem fall as C grows; entry_bits and\n"
      "memory rise one bit per doubling; fpr is flat (C never changes\n"
      "verdicts). The paper's recommended C = N-1 sits at the knee.\n");
  return 0;
}
