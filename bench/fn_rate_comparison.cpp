// Zero-false-negative claims (Theorems 1(1) and 2(1)) and the §2.4
// comparison against the Stable Bloom Filter.
//
// Feeds every detector a duplicate-heavy stream and scores it against its
// own validity history (the self-consistency oracle — see
// analysis/validity_oracle.hpp): GBF, TBF and the well-provisioned Metwally
// scheme must report FN = 0; the Stable Bloom Filter trades false negatives
// for stability and shows a clearly non-zero FN rate; a deliberately
// counter-starved Metwally configuration shows how counter saturation
// erodes its deletion path. Memory columns reproduce the §3.3 accounting.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>

#include "analysis/theory.hpp"
#include "analysis/validity_oracle.hpp"
#include "baseline/metwally_jumping_detector.hpp"
#include "baseline/stable_bloom_filter.hpp"
#include "bench_util.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/timing_bloom_filter.hpp"
#include "stream/rng.hpp"

using namespace ppc;

namespace {

std::vector<std::uint64_t> duplicate_heavy_stream(std::uint64_t count,
                                                  std::uint64_t window,
                                                  std::uint64_t seed) {
  std::vector<std::uint64_t> ids;
  ids.reserve(count);
  stream::Rng rng(seed);
  std::uint64_t fresh = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!ids.empty() && rng.chance(0.35)) {
      ids.push_back(ids[i - 1 - rng.below(std::min<std::uint64_t>(window, i))]);
    } else {
      ids.push_back((seed << 42) + fresh++);
    }
  }
  return ids;
}

struct RowSpec {
  const char* name;
  std::function<std::unique_ptr<core::DuplicateDetector>()> make;
  std::function<std::unique_ptr<analysis::ValidityOracle>()> oracle;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t n = args.scaled(1u << 18);
  const std::uint32_t q = 8;
  const std::uint64_t m_bits = args.scaled(1ull << 25);
  const std::size_t k = 6;

  const auto ids = duplicate_heavy_stream(10 * n, n, /*seed=*/7);

  std::printf(
      "False-negative / false-positive comparison, window N=%llu, "
      "duplicate-heavy stream (%llu arrivals)\n\n",
      static_cast<unsigned long long>(n),
      static_cast<unsigned long long>(ids.size()));

  const std::vector<RowSpec> rows = {
      {"GBF (jumping Q=8)",
       [&] {
         core::GroupBloomFilter::Options o;
         o.bits_per_subfilter = m_bits / (q + 1);
         o.hash_count = k;
         return std::make_unique<core::GroupBloomFilter>(
             core::WindowSpec::jumping_count(n, q), o);
       },
       [&] { return std::make_unique<analysis::JumpingOracle>(n, q); }},
      {"TBF (sliding)",
       [&] {
         core::TimingBloomFilter::Options o;
         o.entries = m_bits / analysis::tbf_entry_bits(n, n - 1);
         o.hash_count = k;
         return std::make_unique<core::TimingBloomFilter>(
             core::WindowSpec::sliding_count(n), o);
       },
       [&] { return std::make_unique<analysis::SlidingOracle>(n); }},
      {"Metwally (wide ctr)",
       [&] {
         baseline::MetwallyJumpingDetector::Options o;
         o.cells = m_bits / (q * 8 + 16);  // same total bit budget
         o.sub_counter_bits = 8;
         o.main_counter_bits = 16;
         o.hash_count = k;
         return std::make_unique<baseline::MetwallyJumpingDetector>(
             core::WindowSpec::jumping_count(n, q), o);
       },
       [&] { return std::make_unique<analysis::JumpingOracle>(n, q); }},
      {"Metwally (4-bit ctr)",
       [&] {
         baseline::MetwallyJumpingDetector::Options o;
         o.cells = m_bits / (q * 4 + 8);
         o.sub_counter_bits = 4;
         o.main_counter_bits = 8;
         o.hash_count = k;
         return std::make_unique<baseline::MetwallyJumpingDetector>(
             core::WindowSpec::jumping_count(n, q), o);
       },
       [&] { return std::make_unique<analysis::JumpingOracle>(n, q); }},
      {"Stable BF",
       [&] {
         baseline::StableBloomFilter::Options o;
         o.cells = m_bits / 3;
         o.cell_bits = 3;
         o.hash_count = 3;
         // An SBF has no crisp window; the fair configuration tunes the
         // decay rate so its freshness horizon (~cells·Max/P arrivals)
         // matches the window N the others enforce.
         o.decrements_per_arrival =
             static_cast<std::size_t>(std::max<std::uint64_t>(
                 1, o.cells * o.max_cell_value() / n));
         return std::make_unique<baseline::StableBloomFilter>(
             core::WindowSpec::sliding_count(n), o);
       },
       [&] { return std::make_unique<analysis::SlidingOracle>(n); }},
  };

  benchutil::print_header(
      {"algorithm", "fn", "fn_rate", "fp", "fp_rate", "memory_KiB"}, 22);
  for (const auto& row : rows) {
    auto detector = row.make();
    auto oracle = row.oracle();
    const auto counts = analysis::run_self_consistency(*detector, *oracle, ids);
    std::printf("%21s ", row.name);
    benchutil::print_row({static_cast<double>(counts.false_negative),
                          counts.false_negative_rate(),
                          static_cast<double>(counts.false_positive),
                          counts.false_positive_rate(),
                          static_cast<double>(detector->memory_bits()) / 8.0 /
                              1024.0},
                         22);
  }

  std::printf(
      "\nExpected: GBF and TBF report fn=0 (Theorems 1(1), 2(1)); the Stable\n"
      "Bloom Filter shows fn>0 (its decay erases fresh entries); the\n"
      "counter-starved Metwally configuration may miss duplicates once its\n"
      "saturated counters corrupt deletion.\n");
  return 0;
}
