// End-to-end network ingest throughput vs the in-process ceiling.
//
// Three arms over the same pair of Zipf click streams (two connections,
// each stamping its own ad id → its own per-ad detector, so duplicate
// totals are interleave-independent) and the same DetectorConfig:
//   * inproc      — clicks go straight into PoolSink::offer in
//     micro-batches: the throughput ceiling with zero serialization,
//     zero syscalls;
//   * wire(1 loop) — the same batches framed as CLICK_BATCH, two loopback
//     TCP connections into an IngestServer running one epoll loop, each
//     client pipelining `inflight` frames and consuming every
//     VERDICT_BATCH;
//   * wire(2 loop) — identical clients against a 2-loop SO_REUSEPORT
//     server (each loop an independent producer into the shared sink).
// The gap between inproc and the wire arms is the cost of the network
// ingest subsystem itself (framing + CRC + syscalls + loop scheduling);
// every wire row records it directly as `wire_over_inproc` =
// wire Mclicks/s ÷ inproc Mclicks/s, the number this bench tracks across
// PRs. Batch size is swept because it is the dominant amortizer: at 16 K
// clicks per frame the wire arm should sit within a small factor of
// inproc; at 256 it is syscall-bound.
//
// BENCH_server_loopback.json is this bench's committed output
// (--json=<path>), following the same JsonSeriesWriter + meta conventions
// as BENCH_sharded_throughput.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adnet/detector_pool.hpp"
#include "bench_util.hpp"
#include "server/client.hpp"
#include "server/ingest_server.hpp"
#include "server/server_config.hpp"
#include "stream/click.hpp"
#include "stream/generators.hpp"

namespace {

using namespace ppc;

constexpr std::size_t kConnections = 2;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<server::wire::ClickRecord> make_clicks(std::uint32_t ad,
                                                   std::size_t count) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = 99 + ad;
  stream::MixedTrafficStream gen(opts);
  std::vector<server::wire::ClickRecord> clicks(count);
  for (auto& rec : clicks) {
    stream::Click c = gen.next();
    c.ad_id = ad;  // one ad per connection → one detector per connection
    rec = {c.ad_id, stream::click_identifier(c), c.time_us};
  }
  return clicks;
}

/// In-process ceiling: the same sink the server would drive, fed directly.
/// Streams run back to back; since each stream owns its ad (hence its
/// detector), the duplicate total matches any wire interleaving exactly.
double run_inproc(
    const server::DetectorConfig& cfg,
    const std::vector<std::vector<server::wire::ClickRecord>>& streams,
    std::size_t batch, std::uint64_t& dups_out) {
  adnet::DetectorPool pool(
      [cfg](std::uint32_t) { return server::build_detector(cfg); });
  server::PoolSink sink(pool);
  std::vector<std::uint32_t> ads(batch);
  std::vector<core::ClickId> ids(batch);
  std::vector<std::uint64_t> times(batch);
  std::vector<char> verdicts(batch);
  std::uint64_t dups = 0;
  const double t0 = now_s();
  for (const auto& clicks : streams) {
    for (std::size_t off = 0; off < clicks.size(); off += batch) {
      const std::size_t n = std::min(batch, clicks.size() - off);
      for (std::size_t i = 0; i < n; ++i) {
        ads[i] = clicks[off + i].ad_id;
        ids[i] = clicks[off + i].click_id;
        times[i] = clicks[off + i].t_us;
      }
      const std::span<bool> out(reinterpret_cast<bool*>(verdicts.data()), n);
      sink.offer({ads.data(), n}, {ids.data(), n}, {times.data(), n}, out);
      for (std::size_t i = 0; i < n; ++i) dups += out[i] ? 1 : 0;
    }
  }
  const double dt = now_s() - t0;
  dups_out = dups;
  return dt;
}

/// One client connection: pump the stream with `inflight` CLICK_BATCH
/// frames outstanding, count every verdict bit. Throws on any protocol
/// surprise (the bench's correctness cross-check catches the rest).
void pump_connection(const std::string& host, std::uint16_t port,
                     const std::vector<server::wire::ClickRecord>& clicks,
                     std::size_t batch, std::size_t inflight,
                     std::uint64_t& dups_out) {
  server::BlockingClient client;
  client.connect(host, port);
  client.handshake();
  std::uint64_t dups = 0;
  std::size_t sent_frames = 0, recv_frames = 0;
  std::uint64_t seq = 0;
  std::size_t off = 0;
  auto recv_one = [&] {
    server::wire::FrameView frame;
    if (!client.read_frame(frame) ||
        frame.type != server::wire::FrameType::kVerdictBatch) {
      throw std::runtime_error("server_loopback: expected VERDICT_BATCH");
    }
    server::wire::VerdictBatchView view;
    std::string err;
    if (!server::wire::parse_verdict_batch(frame.payload, view, err)) {
      throw std::runtime_error("server_loopback: " + err);
    }
    for (std::uint32_t i = 0; i < view.count; ++i) {
      dups += view.duplicate(i) ? 1 : 0;
    }
    ++recv_frames;
  };
  while (off < clicks.size()) {
    const std::size_t n = std::min(batch, clicks.size() - off);
    client.send_click_batch(seq++, {clicks.data() + off, n});
    off += n;
    ++sent_frames;
    if (sent_frames - recv_frames >= inflight) recv_one();
  }
  while (recv_frames < sent_frames) recv_one();
  client.close();
  dups_out = dups;
}

/// Wire arm: kConnections loopback clients against an IngestServer running
/// `loops` SO_REUSEPORT event loops.
double run_wire(
    const server::DetectorConfig& cfg,
    const std::vector<std::vector<server::wire::ClickRecord>>& streams,
    std::size_t batch, std::size_t inflight, std::size_t loops,
    std::uint64_t& dups_out) {
  adnet::DetectorPool pool(
      [cfg](std::uint32_t) { return server::build_detector(cfg); });
  server::PoolSink sink(pool, nullptr,
                        /*concurrent_detectors=*/cfg.shards > 1);
  server::IngestServer::Options opts;
  opts.loops = loops;
  server::IngestServer ingest(sink, opts);
  const std::uint16_t port = ingest.listen("127.0.0.1", 0);
  std::thread loop([&] { ingest.run(); });

  std::vector<std::uint64_t> dups(streams.size(), 0);
  const double t0 = now_s();
  {
    std::vector<std::thread> clients;
    clients.reserve(streams.size());
    for (std::size_t c = 0; c < streams.size(); ++c) {
      clients.emplace_back(pump_connection, "127.0.0.1", port,
                           std::cref(streams[c]), batch, inflight,
                           std::ref(dups[c]));
    }
    for (auto& t : clients) t.join();
  }
  const double dt = now_s() - t0;

  ingest.stop();
  loop.join();
  ingest.drain();
  dups_out = 0;
  for (const std::uint64_t d : dups) dups_out += d;
  return dt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::size_t total = static_cast<std::size_t>(
      args.scaled(std::uint64_t{1} << 23));  // paper run: 8 M clicks

  server::DetectorConfig cfg;
  cfg.window = core::WindowSpec::jumping_count(args.scaled(1 << 22), 8);
  cfg.memory_bits = args.scaled(std::uint64_t{1} << 25);

  std::vector<std::vector<server::wire::ClickRecord>> streams(kConnections);
  for (std::size_t c = 0; c < kConnections; ++c) {
    streams[c] = make_clicks(static_cast<std::uint32_t>(c + 1),
                             total / kConnections);
  }
  std::printf("server_loopback: %zu clicks over %zu connection(s), "
              "window %llu\n",
              total, kConnections,
              static_cast<unsigned long long>(cfg.window.length));

  benchutil::JsonSeriesWriter json("server_loopback", args.json);
  json.set_meta("hw_threads",
                static_cast<double>(std::thread::hardware_concurrency()));
  json.set_meta("cpu_model", benchutil::cpu_model_string());
  json.set_meta("clicks", static_cast<double>(total));
  json.set_meta("connections", static_cast<double>(kConnections));
  json.set_meta("loops", 2.0);  // the multi-loop arm's loop count

  benchutil::print_header(
      {"batch", "arm", "Mclicks/s", "wire/inproc", "dups"});
  constexpr std::size_t kInflight = 4;
  for (const std::size_t batch : {std::size_t{256}, std::size_t{1024},
                                  std::size_t{4096}, std::size_t{16384}}) {
    std::uint64_t dups_inproc = 0, dups_wire1 = 0, dups_wire2 = 0;
    const double dt_in = run_inproc(cfg, streams, batch, dups_inproc);
    const double dt_w1 = run_wire(cfg, streams, batch, kInflight, 1,
                                  dups_wire1);
    const double dt_w2 = run_wire(cfg, streams, batch, kInflight, 2,
                                  dups_wire2);
    const double m_in = static_cast<double>(total) / dt_in / 1e6;
    const double m_w1 = static_cast<double>(total) / dt_w1 / 1e6;
    const double m_w2 = static_cast<double>(total) / dt_w2 / 1e6;
    std::printf("%13zu %13s ", batch, "inproc");
    benchutil::print_row({m_in, 1.0, static_cast<double>(dups_inproc)});
    std::printf("%13zu %13s ", batch, "wire-1loop");
    benchutil::print_row({m_w1, m_w1 / m_in, static_cast<double>(dups_wire1)});
    std::printf("%13zu %13s ", batch, "wire-2loop");
    benchutil::print_row({m_w2, m_w2 / m_in, static_cast<double>(dups_wire2)});
    // Identical configs replaying the identical streams must agree exactly;
    // a mismatch means the wire path corrupted or reordered clicks.
    if (dups_inproc != dups_wire1 || dups_inproc != dups_wire2) {
      std::fprintf(stderr,
                   "FAIL: duplicate totals diverge (inproc %llu, "
                   "wire-1loop %llu, wire-2loop %llu)\n",
                   static_cast<unsigned long long>(dups_inproc),
                   static_cast<unsigned long long>(dups_wire1),
                   static_cast<unsigned long long>(dups_wire2));
      return 1;
    }
    json.add("inproc", {{"batch", static_cast<double>(batch)},
                        {"mclicks_per_s", m_in},
                        {"duplicates", static_cast<double>(dups_inproc)}});
    json.add("wire", {{"batch", static_cast<double>(batch)},
                      {"loops", 1.0},
                      {"mclicks_per_s", m_w1},
                      {"inflight", static_cast<double>(kInflight)},
                      {"wire_over_inproc", m_w1 / m_in},
                      {"duplicates", static_cast<double>(dups_wire1)}});
    json.add("wire", {{"batch", static_cast<double>(batch)},
                      {"loops", 2.0},
                      {"mclicks_per_s", m_w2},
                      {"inflight", static_cast<double>(kInflight)},
                      {"wire_over_inproc", m_w2 / m_in},
                      {"duplicates", static_cast<double>(dups_wire2)}});
  }
  json.write();
  return 0;
}
