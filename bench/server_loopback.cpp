// End-to-end network ingest throughput vs the in-process ceiling.
//
// Two arms over the same Zipf click stream and the same per-ad detector
// configuration (DetectorConfig defaults: jumping-count GBF):
//   * inproc — clicks go straight into PoolSink::offer in micro-batches:
//     the throughput ceiling with zero serialization, zero syscalls;
//   * wire   — the same batches framed as CLICK_BATCH, sent over a real
//     loopback TCP connection into an IngestServer running its epoll loop
//     on a dedicated thread, with the client pipelining `inflight` frames
//     and consuming every VERDICT_BATCH.
// The gap between the arms is the cost of the network ingest subsystem
// itself (framing + CRC + syscalls + loop scheduling), which is the number
// this bench tracks across PRs. Batch size is swept because it is the
// dominant amortizer: at 16 K clicks per frame the wire arm should sit
// within a small factor of inproc; at 256 it is syscall-bound.
//
// BENCH_server_loopback.json is this bench's committed output
// (--json=<path>), following the same JsonSeriesWriter + meta conventions
// as BENCH_sharded_throughput.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adnet/detector_pool.hpp"
#include "bench_util.hpp"
#include "server/client.hpp"
#include "server/ingest_server.hpp"
#include "server/server_config.hpp"
#include "stream/click.hpp"
#include "stream/generators.hpp"

namespace {

using namespace ppc;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<server::wire::ClickRecord> make_clicks(std::size_t count) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = 99;
  stream::MixedTrafficStream gen(opts);
  std::vector<server::wire::ClickRecord> clicks(count);
  for (auto& rec : clicks) {
    stream::Click c = gen.next();
    c.ad_id = 1;  // one detector: both arms exercise one hot filter
    rec = {c.ad_id, stream::click_identifier(c), c.time_us};
  }
  return clicks;
}

/// In-process ceiling: the same sink the server would drive, fed directly.
double run_inproc(const server::DetectorConfig& cfg,
                  const std::vector<server::wire::ClickRecord>& clicks,
                  std::size_t batch, std::uint64_t& dups_out) {
  adnet::DetectorPool pool(
      [cfg](std::uint32_t) { return server::build_detector(cfg); });
  server::PoolSink sink(pool);
  std::vector<std::uint32_t> ads(batch);
  std::vector<core::ClickId> ids(batch);
  std::vector<std::uint64_t> times(batch);
  std::vector<char> verdicts(batch);
  std::uint64_t dups = 0;
  const double t0 = now_s();
  for (std::size_t off = 0; off < clicks.size(); off += batch) {
    const std::size_t n = std::min(batch, clicks.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      ads[i] = clicks[off + i].ad_id;
      ids[i] = clicks[off + i].click_id;
      times[i] = clicks[off + i].t_us;
    }
    const std::span<bool> out(reinterpret_cast<bool*>(verdicts.data()), n);
    sink.offer({ads.data(), n}, {ids.data(), n}, {times.data(), n}, out);
    for (std::size_t i = 0; i < n; ++i) dups += out[i] ? 1 : 0;
  }
  const double dt = now_s() - t0;
  dups_out = dups;
  return dt;
}

/// Wire arm: one loopback connection, `inflight` CLICK_BATCH frames kept
/// in flight, every verdict consumed and counted.
double run_wire(const server::DetectorConfig& cfg,
                const std::vector<server::wire::ClickRecord>& clicks,
                std::size_t batch, std::size_t inflight,
                std::uint64_t& dups_out) {
  adnet::DetectorPool pool(
      [cfg](std::uint32_t) { return server::build_detector(cfg); });
  server::PoolSink sink(pool);
  server::IngestServer ingest(sink);
  const std::uint16_t port = ingest.listen("127.0.0.1", 0);
  std::thread loop([&] { ingest.run(); });

  server::BlockingClient client;
  client.connect("127.0.0.1", port);
  client.handshake();

  std::uint64_t dups = 0;
  std::size_t sent_frames = 0, recv_frames = 0;
  std::uint64_t seq = 0;
  std::size_t off = 0;
  auto recv_one = [&] {
    server::wire::FrameView frame;
    if (!client.read_frame(frame) ||
        frame.type != server::wire::FrameType::kVerdictBatch) {
      throw std::runtime_error("server_loopback: expected VERDICT_BATCH");
    }
    server::wire::VerdictBatchView view;
    std::string err;
    if (!server::wire::parse_verdict_batch(frame.payload, view, err)) {
      throw std::runtime_error("server_loopback: " + err);
    }
    for (std::uint32_t i = 0; i < view.count; ++i) {
      dups += view.duplicate(i) ? 1 : 0;
    }
    ++recv_frames;
  };
  const double t0 = now_s();
  while (off < clicks.size()) {
    const std::size_t n = std::min(batch, clicks.size() - off);
    client.send_click_batch(
        seq++, {clicks.data() + off, n});
    off += n;
    ++sent_frames;
    if (sent_frames - recv_frames >= inflight) recv_one();
  }
  while (recv_frames < sent_frames) recv_one();
  const double dt = now_s() - t0;

  ingest.stop();
  loop.join();
  ingest.drain();
  client.close();
  dups_out = dups;
  return dt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::size_t total = static_cast<std::size_t>(
      args.scaled(std::uint64_t{1} << 23));  // paper run: 8 M clicks

  server::DetectorConfig cfg;
  cfg.window = core::WindowSpec::jumping_count(args.scaled(1 << 22), 8);
  cfg.memory_bits = args.scaled(std::uint64_t{1} << 25);

  const auto clicks = make_clicks(total);
  std::printf("server_loopback: %zu clicks, window %llu\n", total,
              static_cast<unsigned long long>(cfg.window.length));

  benchutil::JsonSeriesWriter json("server_loopback", args.json);
  json.set_meta("hw_threads",
                static_cast<double>(std::thread::hardware_concurrency()));
  json.set_meta("cpu_model", benchutil::cpu_model_string());
  json.set_meta("clicks", static_cast<double>(total));

  benchutil::print_header({"batch", "arm", "Mclicks/s", "dups"});
  constexpr std::size_t kInflight = 4;
  for (const std::size_t batch : {std::size_t{256}, std::size_t{1024},
                                  std::size_t{4096}, std::size_t{16384}}) {
    std::uint64_t dups_inproc = 0, dups_wire = 0;
    const double dt_in = run_inproc(cfg, clicks, batch, dups_inproc);
    const double dt_wire = run_wire(cfg, clicks, batch, kInflight, dups_wire);
    const double m_in = static_cast<double>(total) / dt_in / 1e6;
    const double m_wire = static_cast<double>(total) / dt_wire / 1e6;
    std::printf("%13zu %13s ", batch, "inproc");
    benchutil::print_row({m_in, static_cast<double>(dups_inproc)});
    std::printf("%13zu %13s ", batch, "wire");
    benchutil::print_row({m_wire, static_cast<double>(dups_wire)});
    // Identical configs replaying the identical stream must agree exactly;
    // a mismatch means the wire path corrupted or reordered clicks.
    if (dups_inproc != dups_wire) {
      std::fprintf(stderr,
                   "FAIL: duplicate totals diverge (inproc %llu, wire %llu)\n",
                   static_cast<unsigned long long>(dups_inproc),
                   static_cast<unsigned long long>(dups_wire));
      return 1;
    }
    json.add("inproc", {{"batch", static_cast<double>(batch)},
                        {"mclicks_per_s", m_in},
                        {"duplicates", static_cast<double>(dups_inproc)}});
    json.add("wire", {{"batch", static_cast<double>(batch)},
                      {"mclicks_per_s", m_wire},
                      {"inflight", static_cast<double>(kInflight)},
                      {"duplicates", static_cast<double>(dups_wire)}});
  }
  json.write();
  return 0;
}
