// Bridges the google-benchmark binaries into the repo's BENCH_*.json
// trajectory: gbench_main_with_json() is a drop-in replacement for
// BENCHMARK_MAIN() that additionally understands benchutil's --json=<path>
// (and tolerates --threads=<n>), capturing every run's throughput and
// counters through a pass-through reporter while the normal console output
// stays untouched.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"

namespace ppc::benchutil {

/// ConsoleReporter that also funnels each finished run into a
/// JsonSeriesWriter: series = the benchmark's full name, fields = ns per
/// iteration plus every user counter (items_per_second, mem_ops/elem, ...),
/// already rate-adjusted by the benchmark runner.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(JsonSeriesWriter* writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::vector<std::pair<std::string, double>> fields;
      fields.emplace_back("real_ns_per_iter", run.GetAdjustedRealTime());
      fields.emplace_back("iterations",
                          static_cast<double>(run.iterations));
      for (const auto& [name, counter] : run.counters) {
        fields.emplace_back(name, counter.value);
      }
      writer_->add(run.benchmark_name(), std::move(fields));
    }
  }

 private:
  JsonSeriesWriter* writer_;
};

/// BENCHMARK_MAIN() plus --json: strips benchutil flags, hands the rest to
/// google-benchmark, and writes the captured series when --json was given.
/// Single-threaded benches pass allow_threads=false so a --threads=<n>
/// request fails loudly instead of being silently ignored (the number
/// would otherwise look like a per-thread figure that it is not).
inline int gbench_main_with_json(int argc, char** argv,
                                 const char* bench_name,
                                 bool allow_threads = true) {
  const Args args = Args::parse_known(argc, argv);
  if (!allow_threads && args.threads != 0) {
    std::fprintf(stderr,
                 "%s: --threads is not supported (this bench measures the "
                 "single-threaded hot loop; use sharded_throughput for "
                 "multi-thread scaling)\n",
                 bench_name);
    return 2;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonSeriesWriter writer(bench_name, args.json);
  JsonCapturingReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  writer.write();
  return 0;
}

}  // namespace ppc::benchutil
