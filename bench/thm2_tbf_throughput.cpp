// Theorem 2(3) — TBF running time: O(M/(N·log N)) entry operations per
// element in the worst case. With the paper's C = N-1 the incremental
// reclamation scan touches ~m/N entries per arrival, so per-element cost is
// flat in N once m/N is fixed, and the window size can grow to millions
// without touching throughput.
//
// Also benchmarked: the C knob (larger C → shorter scans, wider entries)
// and the exact hash-table detector as the memory-hungry baseline.
#include <benchmark/benchmark.h>

#include "gbench_json.hpp"

#include "baseline/exact_detectors.hpp"
#include "core/timing_bloom_filter.hpp"

namespace {

using namespace ppc;

void run_detector(benchmark::State& state, core::DuplicateDetector& d) {
  core::OpCounter ops;
  d.set_op_counter(&ops);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.offer(id++));
  }
  state.SetItemsProcessed(state.iterations());
  if (ops.total() > 0) {
    state.counters["entry_ops/elem"] =
        static_cast<double>(ops.total()) /
        static_cast<double>(state.iterations());
  }
  state.counters["memory_MiB"] =
      static_cast<double>(d.memory_bits()) / 8.0 / (1 << 20);
}

/// Window size sweep at fixed m/N ratio (constant FP target): per-element
/// cost should stay flat — the point of the incremental scan.
void BM_TbfOffer_WindowSweep(benchmark::State& state) {
  const std::uint64_t n = 1ull << state.range(0);
  core::TimingBloomFilter::Options opts;
  opts.entries = n * 16;  // m/N fixed at 16
  opts.hash_count = 7;
  core::TimingBloomFilter tbf(core::WindowSpec::sliding_count(n), opts);
  run_detector(state, tbf);
}
BENCHMARK(BM_TbfOffer_WindowSweep)->Arg(12)->Arg(14)->Arg(16)->Arg(18)->Arg(20);

/// C sweep at fixed window: the §4.1 space/time knob.
void BM_TbfOffer_CSweep(benchmark::State& state) {
  constexpr std::uint64_t kN = 1 << 16;
  core::TimingBloomFilter::Options opts;
  opts.entries = kN * 16;
  opts.hash_count = 7;
  opts.c = static_cast<std::uint64_t>(state.range(0));
  core::TimingBloomFilter tbf(core::WindowSpec::sliding_count(kN), opts);
  state.counters["entry_bits"] = static_cast<double>(tbf.entry_bits());
  state.counters["scan_stride"] = static_cast<double>(tbf.clean_stride());
  run_detector(state, tbf);
}
BENCHMARK(BM_TbfOffer_CSweep)
    ->Arg(1 << 10)
    ->Arg(1 << 13)
    ->Arg((1 << 16) - 1)  // paper default C = N-1
    ->Arg(1 << 19);

/// Batched path at a cache-hostile size: software prefetch hides the
/// random-access latency of the timestamp probes.
void BM_TbfOfferBatch(benchmark::State& state) {
  constexpr std::uint64_t kN = 1 << 20;
  core::TimingBloomFilter::Options opts;
  opts.entries = kN * 16;  // ~40 MiB: far beyond L2
  opts.hash_count = 7;
  core::TimingBloomFilter tbf(core::WindowSpec::sliding_count(kN), opts);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> ids(batch);
  std::vector<char> verdicts(batch);  // bool-sized scratch
  std::uint64_t next = 0;
  for (auto _ : state) {
    for (auto& id : ids) id = next++;
    if (batch == 1) {
      verdicts[0] = tbf.offer(ids[0]);
    } else {
      tbf.offer_batch(std::span<const std::uint64_t>(ids),
                      std::span<bool>(reinterpret_cast<bool*>(verdicts.data()),
                                      batch));
    }
    benchmark::DoNotOptimize(verdicts[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_TbfOfferBatch)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_ExactSlidingOffer(benchmark::State& state) {
  baseline::ExactSlidingDetector exact(
      core::WindowSpec::sliding_count(1 << 16));
  run_detector(state, exact);
}
BENCHMARK(BM_ExactSlidingOffer);

/// Jumping mode with very large Q — the regime where the paper says "GBF
/// cannot process the click stream efficiently, and TBF is a better choice".
void BM_TbfOffer_JumpingLargeQ(benchmark::State& state) {
  const std::uint64_t n = 1 << 16;
  const auto q = static_cast<std::uint32_t>(state.range(0));
  core::TimingBloomFilter::Options opts;
  opts.entries = n * 16;
  opts.hash_count = 7;
  core::TimingBloomFilter tbf(core::WindowSpec::jumping_count(n, q), opts);
  run_detector(state, tbf);
}
BENCHMARK(BM_TbfOffer_JumpingLargeQ)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

// BENCHMARK_MAIN() plus --json=<path>: the Theorem 2 series lands in the
// same machine-readable trajectory as BENCH_sharded_throughput.json.
// --threads is rejected: these loops are single-threaded by design.
int main(int argc, char** argv) {
  return ppc::benchutil::gbench_main_with_json(
      argc, argv, "thm2_tbf_throughput", /*allow_threads=*/false);
}
