// Figure 2(a) — "False Positive Rate of GBF Algorithm over Jumping
// Windows": theoretical vs experimental FP rate as the number of hash
// functions k sweeps 1..20.
//
// Paper setup (§5): N = 2^20, Q = 8, m = 1,876,246 bits per sub-filter;
// 20·N distinct click identifiers streamed in, false positives counted over
// the last 10·N arrivals "to make sure that GBF has been stable". Quoted
// endpoint: k = 10 → FP ≈ 0.01.
//
// Scaled runs divide N and m by the same power of two, preserving k·n/m and
// therefore the curve; --paper reproduces the exact sizes.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/theory.hpp"
#include "bench_util.hpp"
#include "core/group_bloom_filter.hpp"

using namespace ppc;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  const std::uint64_t n = args.scaled(1u << 20);
  const std::uint64_t m = args.scaled(1'876'246);
  const std::uint32_t q = 8;

  std::printf("Figure 2(a): GBF FP rate vs k; N=%llu, Q=%u, m=%llu%s\n\n",
              static_cast<unsigned long long>(n), q,
              static_cast<unsigned long long>(m),
              args.paper ? " (paper scale)" : " (scaled; --paper for full)");
  benchutil::print_header({"k", "theory(full)", "theory(mean)", "experiment"});

  for (std::size_t k = 1; k <= 20; ++k) {
    core::GroupBloomFilter::Options opts;
    opts.bits_per_subfilter = m;
    opts.hash_count = k;
    core::GroupBloomFilter gbf(core::WindowSpec::jumping_count(n, q), opts);
    analysis::DistinctRunConfig cfg{20 * n, 10 * n, k};
    const double measured = analysis::measure_fpr_distinct(gbf, cfg);
    benchutil::print_row(
        {static_cast<double>(k),
         analysis::gbf_fpr_upper(static_cast<double>(m),
                                 static_cast<double>(n), q, k),
         analysis::gbf_fpr_mean(static_cast<double>(m), static_cast<double>(n),
                                q, k),
         measured});
  }

  std::printf(
      "\nPaper quote: k=10, m=1,876,246 -> FP about 0.01. Experimental and\n"
      "theoretical curves should track closely across the whole sweep.\n");
  return 0;
}
