// Sharded ingestion throughput: the trajectory bench for the parallel
// batched hot path.
//
// Sweeps {1,2,4,8} threads × {1,4,16,64} shards × {GBF, blocked-GBF, TBF}
// over one Zipf click stream (heavy-tailed duplicates, like real ad
// traffic) and measures two ingestion modes per configuration:
//   * offer  — the legacy path: one virtual call + one mutex acquisition
//     per click, threads = 1 (this is the "single-thread mutex-per-offer
//     baseline" every speedup is quoted against);
//   * batch  — ShardedDetector::offer_batch: micro-batches bucketized by
//     shard, one lock per shard per batch, pipelined inner offer_batch,
//     optional fan-out across ShardedDetector::Options::threads;
//   * engine — the same offer_batch surface running the lock-free
//     owner-pinned SPSC engine (EngineMode::kSpscOwner): buckets are
//     posted to long-lived owner threads through SPSC rings, no mutex on
//     the hot path. Interleaved rep-by-rep with the mutex arms and
//     subject to a regression floor: on hosts with ≥ 4 hardware threads,
//     engine throughput at threads ≥ 4 must be ≥ 1.3× the mutex batch
//     arm, or the bench exits nonzero.
//
// Filters are sized cache-hostile on purpose (the production regime: a
// window of millions of clicks does not fit in L2), which is exactly where
// the batch path's prefetch pipelining pays. --json=<path> records the
// series machine-readably; the checked-in BENCH_sharded_throughput.json is
// this bench's output and the perf baseline future PRs diff against.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/group_bloom_filter.hpp"
#include "core/sharded_detector.hpp"
#include "core/timing_bloom_filter.hpp"
#include "hashing/simd_fmix.hpp"
#include "stream/rng.hpp"
#include "stream/zipf.hpp"

namespace {

using namespace ppc;

constexpr std::size_t kBatch = 16384;  // micro-batch fed to offer_batch
// Global windows, split per shard. The GBF window is production-sized: at
// 64 shards each shard still holds ~hundreds of KiB, so the total working
// set stays DRAM-resident at every shard count and the baseline never
// gets an accidental all-in-cache advantage the real system would not see.
constexpr std::uint64_t kGbfWindow = 1 << 22;
constexpr std::uint64_t kTbfWindow = 1 << 20;  // TBF entries are ~25x wider
constexpr std::uint32_t kGbfQ = 8;
constexpr std::size_t kHashes = 7;

core::ShardedDetector::Factory gbf_factory(std::size_t shards) {
  const std::uint64_t shard_window = kGbfWindow / shards;
  return [shard_window](std::size_t) {
    core::GroupBloomFilter::Options opts;
    // Design-point fill (m ≈ 10·n for k=7), as in thm1_gbf_throughput.
    opts.bits_per_subfilter = 10 * (shard_window / kGbfQ);
    opts.hash_count = kHashes;
    return std::make_unique<core::GroupBloomFilter>(
        core::WindowSpec::jumping_count(shard_window, kGbfQ), opts);
  };
}

/// Same geometry with cache-line-blocked probing: the alternative ingestion
/// design point — k probes cost one cache line instead of k, trading ≈0.3pp
/// of FPR (see hashing::IndexStrategy::kCacheLineBlocked). Its *baseline*
/// speeds up too (fewer serialized misses per offer), so the batch-vs-offer
/// ratio shrinks even as absolute throughput rises.
core::ShardedDetector::Factory gbf_blocked_factory(std::size_t shards) {
  const std::uint64_t shard_window = kGbfWindow / shards;
  return [shard_window](std::size_t) {
    core::GroupBloomFilter::Options opts;
    opts.bits_per_subfilter = 10 * (shard_window / kGbfQ);
    opts.hash_count = kHashes;
    opts.strategy = hashing::IndexStrategy::kCacheLineBlocked;
    return std::make_unique<core::GroupBloomFilter>(
        core::WindowSpec::jumping_count(shard_window, kGbfQ), opts);
  };
}

core::ShardedDetector::Factory tbf_factory(std::size_t shards) {
  const std::uint64_t shard_window = kTbfWindow / shards;
  return [shard_window](std::size_t) {
    core::TimingBloomFilter::Options opts;
    opts.entries = shard_window * 16;  // m/N = 16, as in thm2
    opts.hash_count = kHashes;
    return std::make_unique<core::TimingBloomFilter>(
        core::WindowSpec::sliding_count(shard_window), opts);
  };
}

/// Zipf-duplicate click stream: ranks over a universe ~4 GBF-windows wide
/// so a solid fraction of arrivals are within-window repeats. ONE stream
/// serves every configuration — speedups are same-stream by construction.
std::vector<core::ClickId> make_stream(std::size_t count) {
  stream::Rng rng(2026);
  const stream::ZipfSampler zipf(kGbfWindow * 4, 1.05);
  std::vector<core::ClickId> ids(count);
  for (auto& id : ids) {
    id = hashing::fmix64(zipf.sample(rng) + 0x9e3779b97f4a7c15ull);
  }
  return ids;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One timed ingestion pass; returns clicks/second.
double run_offer(core::ShardedDetector& d,
                 const std::vector<core::ClickId>& ids) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t flagged = 0;
  for (const core::ClickId id : ids) flagged += d.offer(id) ? 1 : 0;
  const double secs = seconds_since(t0);
  if (flagged == ids.size() + 1) std::puts("");  // defeat dead-code elision
  return static_cast<double>(ids.size()) / secs;
}

double run_batch(core::ShardedDetector& d,
                 const std::vector<core::ClickId>& ids) {
  std::vector<char> verdicts(kBatch);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t flagged = 0;
  for (std::size_t off = 0; off < ids.size(); off += kBatch) {
    const std::size_t n = std::min(kBatch, ids.size() - off);
    d.offer_batch(
        std::span<const core::ClickId>(ids.data() + off, n),
        std::span<bool>(reinterpret_cast<bool*>(verdicts.data()), n));
    flagged += verdicts[0] != 0 ? 1 : 0;
  }
  const double secs = seconds_since(t0);
  if (flagged == ids.size() + 1) std::puts("");
  return static_cast<double>(ids.size()) / secs;
}

struct Algo {
  const char* name;
  core::ShardedDetector::Factory (*factory)(std::size_t shards);
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  // Default stream: 2^22 clicks scaled down (scale=4 → 2^18); --paper runs
  // the full stream.
  const std::size_t stream_len =
      static_cast<std::size_t>(args.scaled(std::uint64_t{1} << 22));
  const auto ids = make_stream(stream_len);

  const Algo algos[] = {{"gbf", &gbf_factory},
                        {"gbfblk", &gbf_blocked_factory},
                        {"tbf", &tbf_factory}};
  const std::size_t shard_counts[] = {1, 4, 16, 64};
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  if (args.threads > 0) {
    thread_counts = {static_cast<std::size_t>(args.threads)};
  }

  benchutil::JsonSeriesWriter json("sharded_throughput", args.json);
  // Host metadata rides in the JSON header: throughput and speedup numbers
  // are only comparable against a baseline recorded on the same class of
  // machine, and the engine-vs-mutex gain in particular is meaningless on
  // a single-hardware-thread box.
  json.set_meta("hw_threads",
                static_cast<double>(runtime::ThreadPool::hardware_threads()));
  json.set_meta("cpu_model", benchutil::cpu_model_string());
  std::printf("sharded ingestion: %zu clicks, batch=%zu, gbf window=%llu, "
              "tbf window=%llu (hardware threads: %zu, simd: %s, "
              "detected: %s)\n\n",
              ids.size(), kBatch,
              static_cast<unsigned long long>(kGbfWindow),
              static_cast<unsigned long long>(kTbfWindow),
              runtime::ThreadPool::hardware_threads(),
              hashing::simd::level_name(hashing::simd::active_level()),
              hashing::simd::level_name(hashing::simd::detected_level()));
  // batch-s = batch path with the SIMD kernels pinned to their scalar arm
  // (the PR-1 hash stage); batch = default dispatch; engine = the SPSC
  // owner engine (default dispatch). The last column is the row's gain
  // over its reference arm: batch over batch-s (the vectorized hash
  // stage's contribution alone), engine over batch (the lock-free
  // engine's contribution alone — same SIMD level, same memory traffic).
  std::printf("%6s %7s %8s %8s %12s %9s %9s\n", "algo", "shards", "mode",
              "threads", "Mclicks/s", "speedup", "gain");
  benchutil::print_rule(6, 9);

  // Regression-floor violations (engine < 1.3× mutex batch at threads ≥ 4)
  // collected across the sweep; asserted at exit so one bad cell fails CI.
  std::vector<std::string> floor_violations;
  const bool check_floor = runtime::ThreadPool::hardware_threads() >= 4;
  if (!check_floor) {
    std::printf("note: %zu hardware thread(s) — the engine-vs-mutex floor "
                "(engine >= 1.3x batch at threads >= 4) is recorded but not "
                "asserted; owner threads cannot run in parallel here.\n\n",
                runtime::ThreadPool::hardware_threads());
  }

  for (const Algo& algo : algos) {
    for (const std::size_t shards : shard_counts) {
      // Baseline: mutex-per-offer on one thread — today's upstream path.
      // Best-of-3 timed passes (each from a reset filter, so every rep
      // ingests the identical workload) on both sides: this box is a
      // shared-host VM and single-pass numbers wobble ±10%.
      constexpr int kReps = 3;
      double offer_cps = 0;
      {
        core::ShardedDetector d(shards, algo.factory(shards));
        run_offer(d, ids);  // warm up filters + caches, then measure
        for (int rep = 0; rep < kReps; ++rep) {
          d.reset();
          offer_cps = std::max(offer_cps, run_offer(d, ids));
        }
      }
      std::printf("%6s %7zu %8s %8d %12.3f %9.2f %9s\n", algo.name, shards,
                  "offer", 1, offer_cps / 1e6, 1.0, "-");
      json.add(algo.name, {{"shards", static_cast<double>(shards)},
                           {"mode_batch", 0},
                           {"simd", 0},
                           {"threads", 1},
                           {"clicks", static_cast<double>(ids.size())},
                           {"mclicks_per_s", offer_cps / 1e6},
                           {"speedup_vs_mutex_offer", 1.0}});

      for (const std::size_t threads : thread_counts) {
        core::ShardedDetector d(
            shards, algo.factory(shards),
            {.threads = threads,
             .engine = core::ShardedDetector::EngineMode::kMutex});
        core::ShardedDetector e(
            shards, algo.factory(shards),
            {.threads = threads,
             .engine = core::ShardedDetector::EngineMode::kSpscOwner});
        run_batch(d, ids);  // warm up filters + caches once for all arms
        run_batch(e, ids);

        // Three arms, INTERLEAVED rep-by-rep so the shared-host clock
        // drift (turbo decay / CPU-credit burn over an 8-minute run) hits
        // all equally — arm-after-arm ordering showed a phantom ±10% skew
        // on whichever arm ran second:
        //   scalar — hash kernels pinned to their scalar arm: exactly the
        //            PR-1 pipeline, the reference the SIMD gain is quoted
        //            over;
        //   simd   — default dispatch (AVX2 cap; see simd::active_level);
        //   engine — the SPSC owner engine, default dispatch: its gain
        //            over `simd` isolates the mutex-vs-lock-free delta.
        double scalar_cps = 0;
        double batch_cps = 0;
        double engine_cps = 0;
        for (int rep = 0; rep < kReps; ++rep) {
          hashing::simd::set_level_override(hashing::simd::Level::kScalar);
          d.reset();
          scalar_cps = std::max(scalar_cps, run_batch(d, ids));
          hashing::simd::clear_level_override();
          d.reset();
          batch_cps = std::max(batch_cps, run_batch(d, ids));
          e.reset();
          engine_cps = std::max(engine_cps, run_batch(e, ids));
        }

        const double scalar_speedup = scalar_cps / offer_cps;
        const double speedup = batch_cps / offer_cps;
        const double simd_gain = batch_cps / scalar_cps;
        const double engine_gain = engine_cps / batch_cps;
        std::printf("%6s %7zu %8s %8zu %12.3f %9.2f %9s\n", algo.name,
                    shards, "batch-s", threads, scalar_cps / 1e6,
                    scalar_speedup, "1.00");
        std::printf("%6s %7zu %8s %8zu %12.3f %9.2f %9.2f\n", algo.name,
                    shards, "batch", threads, batch_cps / 1e6, speedup,
                    simd_gain);
        std::printf("%6s %7zu %8s %8zu %12.3f %9.2f %9.2f\n", algo.name,
                    shards, "engine", threads, engine_cps / 1e6,
                    engine_cps / offer_cps, engine_gain);
        json.add(algo.name, {{"shards", static_cast<double>(shards)},
                             {"mode_batch", 1},
                             {"simd", 0},
                             {"engine", 0},
                             {"threads", static_cast<double>(threads)},
                             {"clicks", static_cast<double>(ids.size())},
                             {"mclicks_per_s", scalar_cps / 1e6},
                             {"speedup_vs_mutex_offer", scalar_speedup}});
        json.add(algo.name, {{"shards", static_cast<double>(shards)},
                             {"mode_batch", 1},
                             {"simd", 1},
                             {"engine", 0},
                             {"threads", static_cast<double>(threads)},
                             {"clicks", static_cast<double>(ids.size())},
                             {"mclicks_per_s", batch_cps / 1e6},
                             {"speedup_vs_mutex_offer", speedup},
                             {"simd_gain_vs_scalar_batch", simd_gain}});
        json.add(algo.name, {{"shards", static_cast<double>(shards)},
                             {"mode_batch", 1},
                             {"simd", 1},
                             {"engine", 1},
                             {"threads", static_cast<double>(threads)},
                             {"clicks", static_cast<double>(ids.size())},
                             {"mclicks_per_s", engine_cps / 1e6},
                             {"speedup_vs_mutex_offer",
                              engine_cps / offer_cps},
                             {"engine_gain_vs_mutex_batch", engine_gain}});
        if (check_floor && threads >= 4 && engine_gain < 1.3) {
          char buf[128];
          std::snprintf(buf, sizeof(buf),
                        "%s shards=%zu threads=%zu: engine %.2fx mutex "
                        "batch (floor 1.30x)",
                        algo.name, shards, threads, engine_gain);
          floor_violations.emplace_back(buf);
        }
      }
    }
  }
  json.write();
  if (!floor_violations.empty()) {
    std::fprintf(stderr, "\nengine regression floor FAILED:\n");
    for (const auto& v : floor_violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
    return 1;
  }
  return 0;
}
