// ppcd — the click-stream ingest daemon.
//
//   ppcd --listen=127.0.0.1:4817 --window=jumping:1048576:8 [--memory-mib=16]
//        [--hashes=7] [--sink=pool|sharded|tiered] [--shards=8] [--owners=2]
//        [--engine=auto|on|off] [--flush=16384] [--loops=N] [--sndbuf=BYTES]
//        [--snapshot=PATH] [--restore=PATH] [--stats-interval=SECS]
//
// Serves the wire protocol of src/server/wire.hpp on --loops epoll threads,
// each with its own SO_REUSEPORT listener (kernel-balanced accepts).
// --sink=pool (default) routes clicks by ad id through an
// adnet::DetectorPool, creating one detector per ad on first sight;
// --sink=sharded feeds every click into a single core::ShardedDetector
// (use --shards/--owners/--engine=on for the lock-free owner engine, which
// makes each epoll thread an independent lane-leasing producer);
// --sink=tiered serves an OPEN tenant population through an
// adnet::TieredDetectorPool — dedicated right-sized detectors for the ads
// SpaceSaving flags hot, one shared tail filter for the long tail, all
// inside --memory-cap-mib with promotion deferral instead of length_error.
// With a sink that is not safe for concurrent offers (plain GBF/TBF, an
// unsharded pool, the tiered pool), multi-loop ingest serializes offers
// behind one mutex — correct, but the filter stops scaling; pair
// --loops>1 with --shards>1.
// --stats-interval=SECS starts a reporter thread that queries the server
// over its own wire connection (STATS/STATS_ACK round trip — the same
// frames an external dashboard would use) and prints per-tier memory and
// duplicate accounting every SECS seconds.
// SIGINT/SIGTERM triggers a graceful drain: every loop is quiesced, each
// loop's pending batch is flushed through the detector, every owed verdict
// frame is pushed out with blocking writes, and an op-count summary is
// printed before exit.
//
// Durability: --snapshot=PATH writes the sink's complete window state at
// drain time (atomically: PATH.tmp + fsync + rename), and --restore=PATH
// seeds the freshly built sink from such a file before listening — a
// restart resumes its decaying windows instead of forgetting the last N
// clicks. A restore whose window spec, shard count, or detector kind does
// not match the command line is refused with a clear error.
//
// Enforcement: --enforce=on wraps the sink in a server::EnforcingSink with
// the default enforce::EnforcementPolicy; --enforce=k=v,... overrides
// individual thresholds (see usage). Clicks on CLICK_BATCH_V2 connections
// from sources the reputation ledger currently blocks are rejected at the
// wire. --blocklist-export=PATH writes the CSV blocklist to PATH and an
// nft-loadable set to PATH.nft at drain; --journal=PATH appends one line
// per tier transition as it happens. With --enforce, --snapshot/--restore
// carry the ledger alongside the window state (composed format — a
// snapshot written without --enforce is refused on restore with it).
//
// Replication: --replicate-listen=HOST:PORT makes this daemon a primary —
// every accepted click batch is retained in a bounded sequence-numbered
// ring and streamed to followers over the framed protocol (REPL_* frames,
// version 3); a follower that falls behind the ring receives a chunked
// snapshot instead. --follow=HOST:PORT makes this daemon a warm standby:
// it builds the SAME sink configuration, replays the primary's stream
// through it (state bit-identical by construction), and holds its ingest
// listener in standby until SIGUSR1 promotes it to serve client traffic;
// SIGTERM during standby drains gracefully (writing --snapshot if set).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "adnet/detector_pool.hpp"
#include "enforce/blocklist_export.hpp"
#include "enforce/reputation_ledger.hpp"
#include "server/client.hpp"
#include "server/enforcing_sink.hpp"
#include "server/ingest_server.hpp"
#include "server/replication.hpp"
#include "server/server_config.hpp"

using namespace ppc;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--key=value ...]\n"
      "  --listen=HOST:PORT   bind address (default 127.0.0.1:4817)\n"
      "  --window=SPEC        sliding:N | jumping:N:Q | landmark:N |\n"
      "                       sliding-time:SPAN_US:UNIT_US |\n"
      "                       jumping-time:SPAN_US:Q:UNIT_US\n"
      "  --memory-mib=M       filter memory per detector (default 16)\n"
      "  --hashes=K           hash functions (default 7)\n"
      "  --backend=B          auto|gbf|tbf|apbf (default auto = the paper's\n"
      "                       per-window choice)\n"
      "  --sink=pool|sharded|tiered\n"
      "                       pool: per-ad DetectorPool (throws at the cap)\n"
      "                       sharded: one ShardedDetector for every ad\n"
      "                       tiered: adaptive hot/tail TieredDetectorPool\n"
      "                       (open admission under --memory-cap-mib)\n"
      "  --hot-fpr=P          tiered: hot-tier FP target (default 1e-4);\n"
      "                       hot ads get --window detectors sized to it\n"
      "                       (tiered --window default: sliding:4096)\n"
      "  --tail-window=N      tiered: shared tail window in GLOBAL clicks\n"
      "                       (default 1048576)\n"
      "  --tail-fpr=P         tiered: tail FP target (default 1e-3)\n"
      "  --epoch=N            tiered: promotion/demotion cadence in clicks\n"
      "                       (default 65536)\n"
      "  --promote-share=S    tiered: epoch share that promotes (1/512)\n"
      "  --demote-share=S     tiered: epoch share that demotes (1/4096)\n"
      "  --stats-interval=S   print a STATS report every S seconds (via a\n"
      "                       wire round trip, exercising the STATS frame)\n"
      "  --shards=S           shards per detector (default 1 = unsharded)\n"
      "  --owners=T           engine owner threads / fan-out lanes\n"
      "  --engine=auto|on|off lock-free owner engine for sharded detectors\n"
      "  --flush=N            coalesced-batch flush threshold (default 16384)\n"
      "  --loops=N            epoll event loops, each with an SO_REUSEPORT\n"
      "                       listener (default 1; must be 1..hw threads\n"
      "                       unless --oversubscribe-loops is given)\n"
      "  --oversubscribe-loops allow --loops beyond the hardware threads\n"
      "  --sndbuf=BYTES       shrink per-connection SO_SNDBUF (tests)\n"
      "  --memory-cap-mib=M   DetectorPool total budget (default 1024)\n"
      "  --snapshot=PATH      write window state here on graceful drain\n"
      "                       (atomic: PATH.tmp + fsync + rename)\n"
      "  --restore=PATH       seed window state from a snapshot before\n"
      "                       listening (must match --window/--shards/--sink)\n"
      "  --enforce=on|SPEC    tiered enforcement on v2 traffic: SPEC is\n"
      "                       k=v[,k=v...] over flag-rate, discount-rate,\n"
      "                       block-rate, flag-min, discount-min, block-min,\n"
      "                       blatant-rate, blatant-min, demote-ratio,\n"
      "                       half-life-us, ttl-us, rate-alpha, min-clicks,\n"
      "                       max-sources, by-publisher (e.g.\n"
      "                       --enforce=block-rate=0.6,ttl-us=30000000)\n"
      "  --blocklist-export=PATH\n"
      "                       with --enforce: write the CSV blocklist to\n"
      "                       PATH and an nft-loadable set to PATH.nft at\n"
      "                       graceful drain\n"
      "  --journal=PATH       with --enforce: append one line per tier\n"
      "                       transition (flushed as it happens)\n"
      "  --replicate-listen=HOST:PORT\n"
      "                       primary: stream accepted batches to followers\n"
      "                       from this address (REPL_* frames, protocol 3)\n"
      "  --repl-ring-batches=N / --repl-ring-mib=M\n"
      "                       primary: replication ring bounds (default\n"
      "                       4096 batches / 256 MiB); followers behind the\n"
      "                       ring catch up via a snapshot transfer\n"
      "  --follow=HOST:PORT   warm standby: replay the primary's stream\n"
      "                       through an identically configured sink;\n"
      "                       SIGUSR1 promotes (starts serving clients),\n"
      "                       SIGTERM drains (excludes --restore — the\n"
      "                       follower catches up from the primary)\n",
      argv0);
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) != 0) {
      usage(argv[0]);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string flag(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& flags,
                       const std::string& key, std::uint64_t fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoull(it->second);
}

double flag_double(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

/// "k=v,k=v" → EnforcementPolicy; "on"/"1" keeps every default. Throws
/// std::invalid_argument on unknown keys (and the ledger constructor
/// rejects inconsistent threshold combinations).
enforce::EnforcementPolicy parse_enforce_spec(const std::string& spec) {
  enforce::EnforcementPolicy p;
  if (spec == "on" || spec == "1") return p;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--enforce: expected k=v, got '" + item +
                                  "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "flag-rate") p.flag_rate = std::stod(value);
    else if (key == "discount-rate") p.discount_rate = std::stod(value);
    else if (key == "block-rate") p.block_rate = std::stod(value);
    else if (key == "flag-min") p.flag_min_duplicates = std::stoull(value);
    else if (key == "discount-min") p.discount_min_duplicates = std::stoull(value);
    else if (key == "block-min") p.block_min_duplicates = std::stoull(value);
    else if (key == "blatant-rate") p.blatant_rate = std::stod(value);
    else if (key == "blatant-min") p.blatant_min_duplicates = std::stoull(value);
    else if (key == "demote-ratio") p.demote_ratio = std::stod(value);
    else if (key == "half-life-us") p.score_half_life_us = std::stoull(value);
    else if (key == "ttl-us") p.block_ttl_us = std::stoull(value);
    else if (key == "rate-alpha") p.rate_alpha = std::stod(value);
    else if (key == "min-clicks") p.min_clicks = std::stoull(value);
    else if (key == "max-sources") p.max_sources = std::stoull(value);
    else if (key == "by-publisher") p.key_by_publisher = value == "1" || value == "true";
    else throw std::invalid_argument("--enforce: unknown key '" + key + "'");
  }
  return p;
}

server::IngestServer* g_server = nullptr;

void handle_signal(int /*signum*/) {
  if (g_server != nullptr) g_server->stop();  // one eventfd write: safe here
}

// Standby-mode signals only set flags: the event loops are not running
// yet, so there is nothing to stop() — the standby wait loop polls these.
volatile std::sig_atomic_t g_promote = 0;
volatile std::sig_atomic_t g_standby_stop = 0;
void handle_promote(int /*signum*/) { g_promote = 1; }
void handle_standby_stop(int /*signum*/) { g_standby_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv);
  try {
    const auto parse_hostport =
        [argv](const std::string& spec) -> std::pair<std::string,
                                                     std::uint16_t> {
      const auto colon = spec.rfind(':');
      if (colon == std::string::npos) usage(argv[0]);
      return {spec.substr(0, colon),
              static_cast<std::uint16_t>(std::stoul(spec.substr(colon + 1)))};
    };
    const auto [host, port] =
        parse_hostport(flag(flags, "listen", "127.0.0.1:4817"));

    server::DetectorConfig cfg;
    cfg.window = server::parse_window_spec(
        flag(flags, "window", "jumping:1048576:8"));
    cfg.memory_bits = flag_u64(flags, "memory-mib", 16) << 23;  // MiB → bits
    cfg.hashes = flag_u64(flags, "hashes", 7);
    cfg.backend = server::parse_backend_spec(flag(flags, "backend", "auto"));
    cfg.shards = flag_u64(flags, "shards", 1);
    cfg.owners = flag_u64(flags, "owners", 1);
    const std::string engine = flag(flags, "engine", "auto");
    if (engine == "on") {
      cfg.engine = core::ShardedDetector::EngineMode::kSpscOwner;
    } else if (engine == "off") {
      cfg.engine = core::ShardedDetector::EngineMode::kMutex;
    } else if (engine != "auto") {
      usage(argv[0]);
    }

    server::IngestServer::Options opts;
    opts.flush_clicks = flag_u64(flags, "flush", 16384);
    opts.snapshot_path = flag(flags, "snapshot", "");
    opts.loop.sndbuf_bytes =
        static_cast<int>(flag_u64(flags, "sndbuf", 0));
    opts.loops = flag_u64(flags, "loops", 1);
    if (opts.loops == 0) {
      std::fprintf(stderr,
                   "ppcd: --loops=0 is invalid: the server needs at least "
                   "one event loop (use --loops=1 for the single-threaded "
                   "server)\n");
      return 2;
    }
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    if (opts.loops > hw && !flags.contains("oversubscribe-loops")) {
      std::fprintf(stderr,
                   "ppcd: --loops=%zu exceeds the %zu hardware thread%s — "
                   "extra loops only add context switches; pass "
                   "--oversubscribe-loops to force it (tests)\n",
                   opts.loops, hw, hw == 1 ? "" : "s");
      return 2;
    }

    // Sink construction. Objects outlive the server; declared first.
    std::unique_ptr<core::DuplicateDetector> detector;
    std::unique_ptr<adnet::DetectorPool> pool;
    std::unique_ptr<adnet::TieredDetectorPool> tiered;
    std::unique_ptr<server::ClickSink> sink;
    const std::string sink_kind = flag(flags, "sink", "pool");
    if (sink_kind == "sharded") {
      detector = server::build_detector(cfg);
      sink = std::make_unique<server::DetectorSink>(*detector);
    } else if (sink_kind == "pool") {
      adnet::DetectorPoolOptions pool_opts;
      pool_opts.memory_cap_bits =
          flag_u64(flags, "memory-cap-mib", 1024) << 23;
      pool = std::make_unique<adnet::DetectorPool>(
          [cfg](std::uint32_t) { return server::build_detector(cfg); },
          pool_opts);
      // shards > 1 → the factory builds ShardedDetectors, which are
      // individually thread-safe, so multi-loop offers need no serializing.
      sink = std::make_unique<server::PoolSink>(*pool, nullptr,
                                                /*concurrent_detectors=*/
                                                cfg.shards > 1);
    } else if (sink_kind == "tiered") {
      server::TieredConfig tcfg;
      tcfg.memory_cap_bits = flag_u64(flags, "memory-cap-mib", 1024) << 23;
      // Per-hot-ad windows default small (sliding:4096) — the daemon-wide
      // --window default of jumping:1048576:8 is a single-population
      // setting and would make every promotion cost megabits.
      tcfg.hot_window = flags.contains("window")
                            ? cfg.window
                            : core::WindowSpec::sliding_count(1 << 12);
      tcfg.hot_fpr = flag_double(flags, "hot-fpr", 1e-4);
      tcfg.tail_window_clicks =
          flag_u64(flags, "tail-window", std::uint64_t{1} << 20);
      tcfg.tail_fpr = flag_double(flags, "tail-fpr", 1e-3);
      tcfg.epoch_clicks = flag_u64(flags, "epoch", std::uint64_t{1} << 16);
      tcfg.promote_share = flag_double(flags, "promote-share", 1.0 / 512);
      tcfg.demote_share = flag_double(flags, "demote-share", 1.0 / 4096);
      tiered = server::build_tiered_pool(tcfg);
      sink = std::make_unique<server::TieredPoolSink>(*tiered);
    } else {
      usage(argv[0]);
    }

    // Enforcement wrap: the EnforcingSink decorates whatever sink was
    // built above, so every sink kind gains wire-level blocking.
    std::unique_ptr<enforce::ReputationLedger> ledger;
    std::unique_ptr<enforce::DecisionJournal> journal;
    std::unique_ptr<server::EnforcingSink> enforcing;
    server::ClickSink* active = sink.get();
    const std::string enforce_spec = flag(flags, "enforce", "");
    const std::string blocklist_path = flag(flags, "blocklist-export", "");
    if (!enforce_spec.empty()) {
      ledger = std::make_unique<enforce::ReputationLedger>(
          parse_enforce_spec(enforce_spec));
      const std::string journal_path = flag(flags, "journal", "");
      if (!journal_path.empty()) {
        journal = std::make_unique<enforce::DecisionJournal>(journal_path);
        ledger->set_transition_callback(
            [j = journal.get()](const enforce::TierTransition& t) {
              j->append(t);
            });
      }
      enforcing = std::make_unique<server::EnforcingSink>(*sink, *ledger);
      active = enforcing.get();
    } else if (!blocklist_path.empty() || flags.contains("journal")) {
      std::fprintf(stderr,
                   "ppcd: --blocklist-export/--journal require --enforce\n");
      return 2;
    }

    // Replication roles. A node is a primary (--replicate-listen) or a
    // standby (--follow), never both: a promoted standby has applied
    // clicks that never went through its own ingest flush path, so its
    // ring could not serve a second-tier follower faithfully.
    const std::string repl_listen = flag(flags, "replicate-listen", "");
    const std::string follow = flag(flags, "follow", "");
    if (!repl_listen.empty() && !follow.empty()) {
      std::fprintf(stderr,
                   "ppcd: --replicate-listen and --follow are mutually "
                   "exclusive (a node is a primary or a standby)\n");
      return 2;
    }
    if ((flags.contains("repl-ring-batches") ||
         flags.contains("repl-ring-mib")) &&
        repl_listen.empty()) {
      std::fprintf(stderr,
                   "ppcd: --repl-ring-* require --replicate-listen\n");
      return 2;
    }

    const std::string restore_path = flag(flags, "restore", "");
    if (!follow.empty() && !restore_path.empty()) {
      std::fprintf(stderr,
                   "ppcd: --follow excludes --restore: the follower "
                   "catches up from the primary (ring replay or snapshot "
                   "transfer), seeding it locally would fork the state\n");
      return 2;
    }
    if (!restore_path.empty()) {
      server::IngestServer::restore_sink_snapshot(*active, restore_path);
      std::printf("ppcd: restored window state from %s\n",
                  restore_path.c_str());
      std::fflush(stdout);
    }

    std::unique_ptr<server::ReplicationLog> repl_log;
    if (!repl_listen.empty()) {
      server::ReplicationLog::Options ro;
      ro.max_batches = flag_u64(flags, "repl-ring-batches", 4096);
      ro.max_bytes = flag_u64(flags, "repl-ring-mib", 256) << 20;
      if (!restore_path.empty()) {
        // The restored baseline stands in for sequence 1 but was never
        // appended to the ring, so ring replay from 1 would silently skip
        // it and hand followers a diverged sink. Starting the ring at 2
        // makes a fresh follower's cursor (1) fall below first_seq(),
        // which routes it through the snapshot catch-up path — the only
        // transfer that carries the baseline.
        ro.start_seq = 2;
      }
      repl_log = std::make_unique<server::ReplicationLog>(ro);
      opts.replication = repl_log.get();
    }

    server::IngestServer srv(*active, opts);
    const std::uint16_t bound = srv.listen(host, port);
    g_server = &srv;
    std::signal(SIGPIPE, SIG_IGN);

    // Warm-standby phase: replay the primary's stream until a signal
    // resolves this daemon's fate. The ingest listener above is already
    // bound — clients that connect early queue in the accept backlog and
    // are served the moment the promoted loops start.
    std::unique_ptr<server::ReplicationApplier> applier;
    if (!follow.empty()) {
      const auto [fhost, fport] = parse_hostport(follow);
      applier = std::make_unique<server::ReplicationApplier>(*active);
      server::ReplicationFollower repl_follower(fhost, fport, *applier);
      std::signal(SIGUSR1, handle_promote);
      std::signal(SIGINT, handle_standby_stop);
      std::signal(SIGTERM, handle_standby_stop);
      std::printf("ppcd: standby on %s:%u following %s:%u — sink=%s "
                  "(SIGUSR1 promotes)\n",
                  host.c_str(), bound, fhost.c_str(), fport,
                  active->describe().c_str());
      std::fflush(stdout);
      repl_follower.start();
      while (g_promote == 0 && g_standby_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      repl_follower.stop();
      if (g_standby_stop != 0) {
        // Graceful standby drain: everything applied is consistent (the
        // applier stops between batches), so the snapshot is as valid as
        // a primary's drain snapshot at the same sequence.
        if (!opts.snapshot_path.empty()) {
          server::IngestServer::save_sink_snapshot(*active,
                                                   opts.snapshot_path);
          std::printf("ppcd: snapshot written to %s\n",
                      opts.snapshot_path.c_str());
        }
        std::printf(
            "ppcd: follower drained. applied_seq=%llu clicks=%llu "
            "batches=%llu snapshots=%llu reconnects=%llu\n",
            static_cast<unsigned long long>(applier->next_seq() - 1),
            static_cast<unsigned long long>(applier->clicks_applied()),
            static_cast<unsigned long long>(applier->batches_applied()),
            static_cast<unsigned long long>(applier->snapshots_applied()),
            static_cast<unsigned long long>(repl_follower.reconnects()));
        return 0;
      }
      std::printf("ppcd: promoted — applied_seq=%llu clicks=%llu "
                  "snapshots=%llu reconnects=%llu\n",
                  static_cast<unsigned long long>(applier->next_seq() - 1),
                  static_cast<unsigned long long>(applier->clicks_applied()),
                  static_cast<unsigned long long>(applier->snapshots_applied()),
                  static_cast<unsigned long long>(repl_follower.reconnects()));
      std::fflush(stdout);
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::printf("ppcd: listening on %s:%u — sink=%s window=%s "
                "shards=%zu owners=%zu engine=%s flush=%zu loops=%zu\n",
                host.c_str(), bound, active->describe().c_str(),
                cfg.window.describe().c_str(), cfg.shards, cfg.owners,
                engine.c_str(), opts.flush_clicks, opts.loops);
    std::fflush(stdout);

    std::unique_ptr<server::ReplicationSource> repl_source;
    if (repl_log) {
      const auto [rhost, rport] = parse_hostport(repl_listen);
      repl_source = std::make_unique<server::ReplicationSource>(
          *repl_log, [&srv](std::uint64_t& base_seq) {
            return srv.replication_snapshot(base_seq);
          });
      const std::uint16_t rbound = repl_source->listen(rhost, rport);
      repl_source->start();
      std::printf("ppcd: replicating on %s:%u (ring: %llu batches / "
                  "%llu MiB)\n",
                  rhost.c_str(), rbound,
                  static_cast<unsigned long long>(
                      flag_u64(flags, "repl-ring-batches", 4096)),
                  static_cast<unsigned long long>(
                      flag_u64(flags, "repl-ring-mib", 256)));
      std::fflush(stdout);
    }

    // Periodic stats reporter: a dedicated wire connection per sample so
    // the STATS round trip exercises the production frame path end to end
    // (and never races a verdict stream on an ingest connection).
    std::atomic<bool> stats_stop{false};
    std::thread stats_thread;
    const std::uint64_t stats_interval = flag_u64(flags, "stats-interval", 0);
    if (stats_interval > 0) {
      const std::string stats_host =
          (host == "0.0.0.0" || host.empty()) ? "127.0.0.1" : host;
      stats_thread = std::thread([&stats_stop, stats_host, bound,
                                  stats_interval] {
        const auto period = std::chrono::seconds(stats_interval);
        auto next = std::chrono::steady_clock::now() + period;
        while (!stats_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          if (std::chrono::steady_clock::now() < next) continue;
          next += period;
          try {
            server::BlockingClient client;
            client.connect(stats_host, bound);
            client.handshake();
            const server::wire::StatsReport r = client.request_stats();
            std::printf(
                "ppcd: stats: clicks=%llu duplicates=%llu "
                "memory_bits=%llu/%llu | hot: ads=%llu bits=%llu "
                "clicks=%llu dup=%llu fpr_target=%g | tail: bits=%llu "
                "clicks=%llu dup=%llu fpr_target=%g | promotions=%llu "
                "demotions=%llu deferrals=%llu\n",
                static_cast<unsigned long long>(r.clicks),
                static_cast<unsigned long long>(r.duplicates),
                static_cast<unsigned long long>(r.memory_bits),
                static_cast<unsigned long long>(r.memory_cap_bits),
                static_cast<unsigned long long>(r.hot_ads),
                static_cast<unsigned long long>(r.hot_memory_bits),
                static_cast<unsigned long long>(r.hot_clicks),
                static_cast<unsigned long long>(r.hot_duplicates),
                r.hot_target_fpr,
                static_cast<unsigned long long>(r.tail_memory_bits),
                static_cast<unsigned long long>(r.tail_clicks),
                static_cast<unsigned long long>(r.tail_duplicates),
                r.tail_target_fpr,
                static_cast<unsigned long long>(r.promotions),
                static_cast<unsigned long long>(r.demotions),
                static_cast<unsigned long long>(r.promotion_deferrals));
            std::fflush(stdout);
          } catch (const std::exception& e) {
            // Shutdown races (listener already gone) are expected; anything
            // else is worth a line but never fatal to the daemon.
            if (!stats_stop.load(std::memory_order_relaxed)) {
              std::fprintf(stderr, "ppcd: stats: %s\n", e.what());
            }
          }
        }
      });
    }

    const auto t0 = std::chrono::steady_clock::now();
    srv.run();
    stats_stop.store(true, std::memory_order_relaxed);
    if (stats_thread.joinable()) stats_thread.join();
    const auto st = srv.drain();
    if (repl_source) {
      // The drain's final flush appended its batches to the ring; give the
      // standby a bounded window to pull and acknowledge them so a planned
      // failover (SIGTERM primary, SIGUSR1 follower) hands over the
      // complete stream.
      const std::uint64_t last = repl_log->next_seq() - 1;
      if (last > 0 && !repl_source->wait_followers_caught_up(last, 10000)) {
        std::fprintf(stderr,
                     "ppcd: warning: a follower had not acknowledged seq "
                     "%llu at shutdown\n",
                     static_cast<unsigned long long>(last));
      }
      repl_source->stop();
      std::printf(
          "ppcd: replication: batches=%llu clicks=%llu evicted=%llu "
          "followers=%zu\n",
          static_cast<unsigned long long>(repl_log->next_seq() - 1),
          static_cast<unsigned long long>(repl_log->appended_clicks()),
          static_cast<unsigned long long>(repl_log->evicted_batches()),
          repl_source->sessions_accepted());
    }
    if (!opts.snapshot_path.empty()) {
      std::printf("ppcd: snapshot written to %s\n", opts.snapshot_path.c_str());
    }
    if (enforcing) {
      const enforce::ReputationLedger::Stats es = ledger->stats();
      std::printf(
          "ppcd: enforce: sources=%llu flagged=%llu discounted=%llu "
          "blocked=%llu rejected=%llu promotions=%llu demotions=%llu "
          "block_expiries=%llu\n",
          static_cast<unsigned long long>(es.sources),
          static_cast<unsigned long long>(es.flagged),
          static_cast<unsigned long long>(es.discounted),
          static_cast<unsigned long long>(es.blocked),
          static_cast<unsigned long long>(enforcing->rejected()),
          static_cast<unsigned long long>(es.promotions),
          static_cast<unsigned long long>(es.demotions),
          static_cast<unsigned long long>(es.block_expiries));
      if (!blocklist_path.empty()) {
        const auto write_text = [](const std::string& path,
                                   const std::string& text) {
          std::FILE* f = std::fopen(path.c_str(), "w");
          if (f == nullptr) {
            throw std::runtime_error("ppcd: cannot write " + path);
          }
          std::fwrite(text.data(), 1, text.size(), f);
          std::fclose(f);
        };
        write_text(blocklist_path, enforce::export_csv(*ledger));
        write_text(blocklist_path + ".nft", enforce::export_nftables(*ledger));
        std::printf("ppcd: blocklist written to %s (+.nft)\n",
                    blocklist_path.c_str());
      }
    }
    const auto ls = srv.loop_stats();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf(
        "ppcd: drained. clicks=%llu duplicates=%llu frames=%llu "
        "flushes=%llu pings=%llu drains=%llu protocol_errors=%llu\n"
        "ppcd: connections accepted=%llu closed=%llu "
        "backpressure_pauses=%llu bytes_in=%llu bytes_out=%llu\n"
        "ppcd: %.1f s, %.3f Mclicks/s\n",
        static_cast<unsigned long long>(st.clicks),
        static_cast<unsigned long long>(st.duplicates),
        static_cast<unsigned long long>(st.click_frames),
        static_cast<unsigned long long>(st.flushes),
        static_cast<unsigned long long>(st.pings),
        static_cast<unsigned long long>(st.drains),
        static_cast<unsigned long long>(st.protocol_errors),
        static_cast<unsigned long long>(ls.accepted),
        static_cast<unsigned long long>(ls.closed),
        static_cast<unsigned long long>(ls.backpressure_pauses),
        static_cast<unsigned long long>(ls.bytes_in),
        static_cast<unsigned long long>(ls.bytes_out), secs,
        secs > 0 ? static_cast<double>(st.clicks) / secs / 1e6 : 0.0);
    if (srv.loops() > 1) {
      for (std::size_t i = 0; i < srv.loops(); ++i) {
        const auto per = srv.loop_stats(i);
        std::printf("ppcd:   loop %zu: accepted=%llu bytes_in=%llu "
                    "bytes_out=%llu\n",
                    i, static_cast<unsigned long long>(per.accepted),
                    static_cast<unsigned long long>(per.bytes_in),
                    static_cast<unsigned long long>(per.bytes_out));
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppcd: %s\n", e.what());
    return 1;
  }
}
