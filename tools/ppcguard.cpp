// ppcguard — command-line front end for the library.
//
//   ppcguard gen    --out=trace.bin --clicks=1000000 --kind=botnet [...]
//   ppcguard detect --trace=trace.bin --window=sliding:100000 [...]
//   ppcguard audit  --trace=trace.bin --window=jumping:100000:8 [...]
//   ppcguard plan   --window-n=1048576 --q=8 --fpr=0.01
//
// `gen` writes a synthetic click trace; `detect` streams it through the
// recommended detector and prints billing-grade statistics; `audit` runs
// the advertiser/publisher joint audit plus offender attribution; `plan`
// prints memory plans for a target false-positive rate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "adnet/auditor.hpp"
#include "analysis/sizing.hpp"
#include "baseline/exact_detectors.hpp"
#include "core/detector_factory.hpp"
#include "stream/adapters.hpp"
#include "stream/generators.hpp"
#include "stream/trace.hpp"

using namespace ppc;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [--key=value ...]\n"
      "\n"
      "commands:\n"
      "  gen     --out=PATH [--clicks=N] [--kind=distinct|mixed|botnet|revisit]\n"
      "          [--seed=S] [--users=N] [--ads=N] [--bots=N] [--attack-fraction=F]\n"
      "  detect  --trace=PATH --window=sliding:N | jumping:N:Q | landmark:N\n"
      "          [--memory-mib=M] [--hashes=K] [--policy=ip|cookie|both]\n"
      "  audit   --trace=PATH --window=... [--memory-mib=M] [--bid=DOLLARS]\n"
      "  plan    --window-n=N [--q=Q] [--fpr=P]\n",
      argv0);
  std::exit(2);
}

/// --key=value arguments into a map; anything else is an error.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               const char* argv0) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage(argv0);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string flag(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& flags,
                       const std::string& key, std::uint64_t fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoull(it->second);
}

double flag_f64(const std::map<std::string, std::string>& flags,
                const std::string& key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

/// Parses "sliding:N", "jumping:N:Q", "landmark:N" (count-based) and the
/// time-based "sliding-time:SPAN_US:UNIT_US" / "jumping-time:SPAN:Q:UNIT".
core::WindowSpec parse_window(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const auto colon = text.find(':', start);
    parts.push_back(text.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  auto num = [&](std::size_t i) { return std::stoull(parts.at(i)); };
  if (parts[0] == "sliding" && parts.size() == 2) {
    return core::WindowSpec::sliding_count(num(1));
  }
  if (parts[0] == "jumping" && parts.size() == 3) {
    return core::WindowSpec::jumping_count(
        num(1), static_cast<std::uint32_t>(num(2)));
  }
  if (parts[0] == "landmark" && parts.size() == 2) {
    return core::WindowSpec::landmark_count(num(1));
  }
  if (parts[0] == "sliding-time" && parts.size() == 3) {
    return core::WindowSpec::sliding_time(num(1), num(2));
  }
  if (parts[0] == "jumping-time" && parts.size() == 4) {
    return core::WindowSpec::jumping_time(
        num(1), static_cast<std::uint32_t>(num(2)), num(3));
  }
  throw std::invalid_argument("unrecognized --window: " + text);
}

stream::IdentifierPolicy parse_policy(const std::string& text) {
  if (text == "ip") return stream::IdentifierPolicy::kIpAndAd;
  if (text == "cookie") return stream::IdentifierPolicy::kCookieAndAd;
  if (text == "both") return stream::IdentifierPolicy::kIpCookieAndAd;
  throw std::invalid_argument("unrecognized --policy: " + text);
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  const std::string out = flag(flags, "out", "");
  if (out.empty()) throw std::invalid_argument("gen: --out is required");
  const std::uint64_t clicks = flag_u64(flags, "clicks", 1'000'000);
  const std::string kind = flag(flags, "kind", "mixed");
  const std::uint64_t seed = flag_u64(flags, "seed", 1);

  std::unique_ptr<stream::ClickGenerator> gen;
  if (kind == "distinct") {
    stream::DistinctStreamOptions opts;
    opts.seed = seed;
    opts.ad_count = static_cast<std::uint32_t>(flag_u64(flags, "ads", 16));
    gen = std::make_unique<stream::DistinctStream>(opts);
  } else if (kind == "mixed") {
    stream::MixedTrafficOptions opts;
    opts.seed = seed;
    opts.user_count = flag_u64(flags, "users", 100'000);
    opts.ad_count = static_cast<std::uint32_t>(flag_u64(flags, "ads", 64));
    gen = std::make_unique<stream::MixedTrafficStream>(opts);
  } else if (kind == "botnet") {
    stream::MixedTrafficOptions bg;
    bg.seed = seed;
    bg.user_count = flag_u64(flags, "users", 100'000);
    bg.ad_count = static_cast<std::uint32_t>(flag_u64(flags, "ads", 64));
    stream::BotnetAttackOptions atk;
    atk.seed = seed ^ 0xa77ac;
    atk.bot_count = static_cast<std::uint32_t>(flag_u64(flags, "bots", 1000));
    atk.attack_fraction = flag_f64(flags, "attack-fraction", 0.3);
    gen = std::make_unique<stream::BotnetAttackStream>(
        std::make_unique<stream::MixedTrafficStream>(bg), atk);
  } else if (kind == "revisit") {
    stream::RevisitStreamOptions opts;
    opts.seed = seed;
    gen = std::make_unique<stream::RevisitStream>(opts);
  } else {
    throw std::invalid_argument("gen: unknown --kind=" + kind);
  }

  stream::TraceWriter writer(out);
  for (std::uint64_t i = 0; i < clicks; ++i) writer.append(gen->next());
  writer.close();
  std::printf("wrote %llu %s clicks to %s\n",
              static_cast<unsigned long long>(clicks), kind.c_str(),
              out.c_str());
  return 0;
}

int cmd_detect(const std::map<std::string, std::string>& flags) {
  const std::string path = flag(flags, "trace", "");
  if (path.empty()) throw std::invalid_argument("detect: --trace is required");
  const auto window = parse_window(flag(flags, "window", "sliding:100000"));
  const auto policy = parse_policy(flag(flags, "policy", "ip"));

  core::DetectorBudget budget;
  budget.total_memory_bits = flag_u64(flags, "memory-mib", 16) << 23;
  budget.hash_count = static_cast<std::size_t>(flag_u64(flags, "hashes", 7));
  auto detector = core::make_detector(window, budget);

  stream::TraceStream trace(path);
  std::uint64_t valid = 0, duplicates = 0;
  const auto start = std::chrono::steady_clock::now();
  while (!trace.done()) {
    const stream::Click c = trace.next();
    if (detector->offer(stream::click_identifier(c, policy), c.time_us)) {
      ++duplicates;
    } else {
      ++valid;
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  std::printf("detector : %s over %s\n", detector->name().c_str(),
              window.describe().c_str());
  std::printf("memory   : %.2f MiB\n",
              static_cast<double>(detector->memory_bits()) / 8 / (1 << 20));
  std::printf("clicks   : %llu (%llu valid, %llu duplicate, %.2f%% dup)\n",
              static_cast<unsigned long long>(valid + duplicates),
              static_cast<unsigned long long>(valid),
              static_cast<unsigned long long>(duplicates),
              100.0 * static_cast<double>(duplicates) /
                  static_cast<double>(valid + duplicates));
  std::printf("rate     : %.2f Mclicks/s\n",
              static_cast<double>(valid + duplicates) / secs / 1e6);
  return 0;
}

int cmd_audit(const std::map<std::string, std::string>& flags) {
  const std::string path = flag(flags, "trace", "");
  if (path.empty()) throw std::invalid_argument("audit: --trace is required");
  const auto window = parse_window(flag(flags, "window", "sliding:100000"));
  const auto policy = parse_policy(flag(flags, "policy", "ip"));
  const auto bid = adnet::from_dollars(flag_f64(flags, "bid", 0.25));

  core::DetectorBudget budget;
  budget.total_memory_bits = flag_u64(flags, "memory-mib", 16) << 23;
  auto publisher_side = core::make_detector(window, budget);

  std::unique_ptr<core::DuplicateDetector> advertiser_side;
  switch (window.kind) {
    case core::WindowKind::kSliding:
      advertiser_side =
          window.basis == core::WindowBasis::kCount
              ? std::unique_ptr<core::DuplicateDetector>(
                    std::make_unique<baseline::ExactSlidingDetector>(window))
              : std::make_unique<baseline::ExactTimeSlidingDetector>(window);
      break;
    case core::WindowKind::kJumping:
      advertiser_side = std::make_unique<baseline::ExactJumpingDetector>(window);
      break;
    case core::WindowKind::kLandmark:
      advertiser_side = std::make_unique<baseline::ExactLandmarkDetector>(window);
      break;
  }

  adnet::FraudAuditor auditor;
  adnet::JointAuditReport report;
  stream::TraceStream trace(path);
  while (!trace.done()) {
    const stream::Click c = trace.next();
    const core::ClickId id = stream::click_identifier(c, policy);
    const bool pub = publisher_side->offer(id, c.time_us);
    const bool adv = advertiser_side->offer(id, c.time_us);
    auditor.observe(c, pub);
    ++report.clicks;
    if (!pub && !adv) ++report.both_valid;
    else if (pub && adv) ++report.both_duplicate;
    else if (!pub) { ++report.publisher_only_valid; report.disputed += bid; }
    else { ++report.advertiser_only_valid; report.disputed += bid; }
  }

  std::printf("joint audit over %llu clicks (%s)\n",
              static_cast<unsigned long long>(report.clicks),
              window.describe().c_str());
  std::printf("  agreement        : %.4f%%\n", 100.0 * report.agreement_rate());
  std::printf("  both valid       : %llu\n",
              static_cast<unsigned long long>(report.both_valid));
  std::printf("  both duplicate   : %llu\n",
              static_cast<unsigned long long>(report.both_duplicate));
  std::printf("  disputed clicks  : %llu (%s at %s per click)\n",
              static_cast<unsigned long long>(report.disagreements()),
              adnet::format_dollars(report.disputed).c_str(),
              adnet::format_dollars(bid).c_str());

  std::printf("publisher duplicate rates:\n");
  for (const auto& risk : auditor.report()) {
    std::printf("  publisher %5u: %8llu clicks, %6.2f%% duplicates%s\n",
                risk.publisher_id,
                static_cast<unsigned long long>(risk.clicks),
                100.0 * risk.duplicate_rate, risk.flagged ? "  FLAGGED" : "");
  }
  std::printf("top duplicate sources:\n");
  for (const auto& e : auditor.top_offenders(5)) {
    std::printf("  %-16s >= %llu duplicates%s\n",
                stream::format_ip(e.source_ip).c_str(),
                static_cast<unsigned long long>(e.guaranteed()),
                e.flagged ? "  FLAGGED" : "");
  }
  return 0;
}

int cmd_plan(const std::map<std::string, std::string>& flags) {
  const std::uint64_t n = flag_u64(flags, "window-n", 1u << 20);
  const auto q = static_cast<std::uint32_t>(flag_u64(flags, "q", 8));
  const double fpr = flag_f64(flags, "fpr", 0.01);

  const auto gbf = analysis::plan_gbf(n, q, fpr);
  const auto tbf = analysis::plan_tbf(n, fpr);
  std::printf("target: FP <= %g over a window of %llu clicks\n\n", fpr,
              static_cast<unsigned long long>(n));
  std::printf("GBF (jumping, Q=%u):\n", q);
  std::printf("  m = %llu bits/sub-filter, k = %zu, total %.2f MiB, "
              "predicted FP %.3g\n",
              static_cast<unsigned long long>(gbf.bits_per_subfilter),
              gbf.hash_count,
              static_cast<double>(gbf.total_bits) / 8 / (1 << 20),
              gbf.predicted_fpr);
  std::printf("TBF (sliding, C = N-1):\n");
  std::printf("  m = %llu entries x %zu bits, k = %zu, total %.2f MiB, "
              "predicted FP %.3g\n",
              static_cast<unsigned long long>(tbf.entries), tbf.entry_bits,
              tbf.hash_count,
              static_cast<double>(tbf.total_bits) / 8 / (1 << 20),
              tbf.predicted_fpr);
  std::printf("\nTBF/GBF memory ratio: %.2fx — %s\n",
              analysis::tbf_over_gbf_memory_ratio(n, q, fpr),
              "use GBF when jumping-window expiry is acceptable (paper §3), "
              "TBF when you need per-click sliding expiry (paper §4)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, argv[0]);
    if (command == "gen") return cmd_gen(flags);
    if (command == "detect") return cmd_detect(flags);
    if (command == "audit") return cmd_audit(flags);
    if (command == "plan") return cmd_plan(flags);
    usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppcguard %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
