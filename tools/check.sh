#!/usr/bin/env bash
# Tier-1 verification plus the threading race gate.
#
#   1. regular build + full ctest suite (the ROADMAP tier-1 command);
#   2. the same build + suite re-run with PPC_ENGINE_DEFAULT=ON, which
#      flips every EngineMode::kAuto ShardedDetector onto the lock-free
#      owner-pinned SPSC engine — the whole suite must pass in BOTH
#      synchronization designs;
#   3. the same suite built with -DPPC_DISABLE_SIMD=ON — the scalar-only
#      escape hatch must stay green AND produce identical verdicts (the
#      parity/equivalence tests run in both builds, so a divergence between
#      the SIMD and scalar index kernels fails here);
#   4. a ThreadSanitizer build (PPC_SANITIZE=thread) of the concurrency
#      tests — sharded_test, runtime_test, parallel_batch_test,
#      batch_times_test, spsc_ring_test, engine_equivalence_test, the
#      network ingest pair wire_fuzz_test / server_e2e_test (event loop
#      thread vs client threads), durability_test (snapshot save/restore
#      quiesces engine owner threads and drives full daemon restarts),
#      adnet_extra_test (DetectorPool evict racing offer_batch),
#      tiered_pool_test (the mutex-serialized tiered pool),
#      enforce_test (the EnforcingSink loopback e2e: event loop vs
#      client thread with the reputation ledger in the offer path), and
#      replication_test (the warm-standby fault-injection harness:
#      primary event loop vs replication source session threads vs the
#      follower pump, reconnecting through chaos-proxy faults) — so
#      every PR touching the parallel ingestion paths gets a race check;
#      the engine-sensitive ones run under TSan in both engine defaults
#      (the e2e and durability binaries include the multi-loop fixtures,
#      so the SO_REUSEPORT cross-loop paths are raced in both designs);
#   5. CLI validation: ppcd must reject --loops=0 and --loops beyond the
#      hardware threads (without --oversubscribe-loops) with clear errors.
#
# Usage: tools/check.sh [--tsan-only]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 2)
TSAN_ONLY=0
[[ "${1:-}" == "--tsan-only" ]] && TSAN_ONLY=1

TSAN_TESTS=(sharded_test runtime_test parallel_batch_test batch_times_test
            spsc_ring_test engine_equivalence_test wire_fuzz_test
            server_e2e_test durability_test apbf_test conformance_test
            adnet_extra_test tiered_pool_test enforce_test replication_test)
# Tests whose ShardedDetectors default to kAuto and therefore change
# behaviour under PPC_ENGINE_DEFAULT=ON (the rest construct their mode
# explicitly or don't touch ShardedDetector at all).
ENGINE_SENSITIVE_TESTS=(sharded_test parallel_batch_test batch_times_test
                        server_e2e_test durability_test conformance_test
                        replication_test)

if [[ "$TSAN_ONLY" == 0 ]]; then
  echo "== tier-1: build + ctest =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")

  echo "== tier-1 (engine): same build, PPC_ENGINE_DEFAULT=ON ctest =="
  (cd build && PPC_ENGINE_DEFAULT=ON ctest --output-on-failure -j "$JOBS")

  echo "== cli gate: ppcd rejects bad --loops values =="
  # `|| true` inside $(...): ppcd exiting nonzero is the EXPECTED outcome
  # here and must not trip set -e / pipefail — the assertions below are on
  # the exit status (checked via if) and the error text.
  if ./build/tools/ppcd --loops=0 --listen=127.0.0.1:0 2>/dev/null; then
    echo "FAIL: ppcd accepted --loops=0"; exit 1
  fi
  OUT=$(./build/tools/ppcd --loops=0 --listen=127.0.0.1:0 2>&1 || true)
  echo "$OUT" | grep -q "loops=0 is invalid" \
    || { echo "FAIL: --loops=0 error message missing"; exit 1; }
  OVER=$(( $(nproc) + 1 ))
  if ./build/tools/ppcd --loops="$OVER" --listen=127.0.0.1:0 2>/dev/null; then
    echo "FAIL: ppcd accepted --loops=$OVER without --oversubscribe-loops"
    exit 1
  fi
  OUT=$(./build/tools/ppcd --loops="$OVER" --listen=127.0.0.1:0 2>&1 || true)
  echo "$OUT" | grep -q "exceeds the .* hardware thread" \
    || { echo "FAIL: oversubscription error message missing"; exit 1; }

  echo "== tier-1 (scalar): -DPPC_DISABLE_SIMD=ON build + ctest =="
  cmake -B build-nosimd -S . -DPPC_DISABLE_SIMD=ON \
    -DPPC_BUILD_BENCH=OFF -DPPC_BUILD_EXAMPLES=OFF
  cmake --build build-nosimd -j "$JOBS"
  (cd build-nosimd && ctest --output-on-failure -j "$JOBS")
fi

echo "== race gate: TSan build of the concurrency tests =="
cmake -B build-tsan -S . -DPPC_SANITIZE=thread \
  -DPPC_BUILD_BENCH=OFF -DPPC_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  echo "-- $t (tsan)"
  ./build-tsan/tests/"$t"
done
for t in "${ENGINE_SENSITIVE_TESTS[@]}"; do
  echo "-- $t (tsan, PPC_ENGINE_DEFAULT=ON)"
  PPC_ENGINE_DEFAULT=ON ./build-tsan/tests/"$t"
done
echo "check.sh: all gates passed"
