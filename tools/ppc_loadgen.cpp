// ppc_loadgen — load generator and correctness checker for ppcd.
//
//   ppc_loadgen --connect=127.0.0.1:4817 --connections=4 --clicks=1000000
//               --batch=1024 [--inflight=4] [--seed=1] [--verify=on|off]
//               [--window=... --memory-mib=... --hashes=... --backend=...
//                --shards=... --owners=... --engine=...]
//               (mirror of the ppcd flags)
//
// Each connection runs on its own thread: a deterministic Zipf click
// stream (stream::MixedTrafficStream, seed = --seed + connection index,
// every click stamped with the connection's OWN ad id so its identifier
// population maps to its own per-ad detector on a --sink=pool server),
// batched into CLICK_BATCH frames with up to --inflight outstanding, with
// per-batch round-trip latency recorded from send to verdict receipt.
//
// With --verify=on (default) the verdict bits received over the wire are
// compared BIT-FOR-BIT against an in-process oracle: the identical click
// stream replayed through a detector built by the same
// server::build_detector config the daemon uses. Because each connection
// owns its ad (hence its detector) the comparison is exact regardless of
// how connections interleave on the server. The DRAIN_ACK totals are
// cross-checked too. Any mismatch exits nonzero.
//
// --v2=on switches to the source-attributed wire: a v2 handshake and
// CLICK_BATCH_V2 frames carrying deterministic per-click source IPs (a
// fifth of each connection's clicks come from 3 "attacker" sources with a
// tiny duplicate-heavy identifier pool; sources are disjoint across
// connections). --verify-enforce=SPEC (implies --v2) additionally wraps
// the oracle in the same EnforcingSink + ReputationLedger ppcd builds for
// --enforce=SPEC, covering the wire-rejection path end to end. It requires
// --connections=1 (the ledger's Space-Saving offender sketch is GLOBAL —
// its count−error evidence bounds depend on every source the daemon has
// seen, so a per-connection replay of a shared ledger is not bit-exact
// once connections interleave) and --inflight=1 (EnforcingSink decides a
// whole offer batch before observing any of it, so verdicts depend on
// offer boundaries; lock-step pins the daemon to one wire frame per
// offer, matching the oracle's chunking).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "enforce/reputation_ledger.hpp"
#include "server/client.hpp"
#include "server/enforcing_sink.hpp"
#include "server/ingest_server.hpp"
#include "server/server_config.hpp"
#include "stream/click.hpp"
#include "stream/generators.hpp"

using namespace ppc;
namespace wire = ppc::server::wire;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--key=value ...]\n"
      "  --connect=HOST:PORT  server address (default 127.0.0.1:4817)\n"
      "  --connections=N      parallel client connections (default 4)\n"
      "  --clicks=N           total clicks across connections (default 1M)\n"
      "  --batch=B            clicks per CLICK_BATCH frame (default 1024)\n"
      "  --inflight=W         outstanding batches per connection (default 4)\n"
      "  --seed=S             stream seed (default 1)\n"
      "  --verify=on|off      oracle verification (default on)\n"
      "  --sndbuf=BYTES       shrink the client sockets' SO_SNDBUF and\n"
      "                       SO_RCVBUF symmetrically (backpressure tests)\n"
      "  --loops=N            acceptance mode: assert the server spread our\n"
      "                       connections across N SO_REUSEPORT loops and\n"
      "                       report per-connection RTT skew (warns instead\n"
      "                       of failing on 1-core hosts)\n"
      "  --v2=on|off          source-attributed CLICK_BATCH_V2 wire\n"
      "                       (default off)\n"
      "  --verify-enforce=SPEC verify against an enforcement oracle built\n"
      "                       from the same spec as ppcd --enforce=SPEC\n"
      "                       (implies --v2=on; requires --connections=1\n"
      "                       and --inflight=1, the defaults in this mode;\n"
      "                       point it at a daemon running the same spec)\n"
      "  --window=SPEC --memory-mib=M --hashes=K --backend=B --shards=S\n"
      "  --owners=T --engine=auto|on|off\n"
      "                       mirror of the ppcd detector flags (oracle)\n",
      argv0);
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) != 0) {
      usage(argv[0]);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string flag(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& flags,
                       const std::string& key, std::uint64_t fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoull(it->second);
}

/// "k=v,k=v" → EnforcementPolicy — the SAME grammar ppcd's --enforce flag
/// speaks, so one spec string drives both the daemon and this oracle.
/// "on"/"1" keeps every default.
enforce::EnforcementPolicy parse_enforce_spec(const std::string& spec) {
  enforce::EnforcementPolicy p;
  if (spec == "on" || spec == "1") return p;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--verify-enforce: expected k=v, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "flag-rate") p.flag_rate = std::stod(value);
    else if (key == "discount-rate") p.discount_rate = std::stod(value);
    else if (key == "block-rate") p.block_rate = std::stod(value);
    else if (key == "flag-min") p.flag_min_duplicates = std::stoull(value);
    else if (key == "discount-min") p.discount_min_duplicates = std::stoull(value);
    else if (key == "block-min") p.block_min_duplicates = std::stoull(value);
    else if (key == "blatant-rate") p.blatant_rate = std::stod(value);
    else if (key == "blatant-min") p.blatant_min_duplicates = std::stoull(value);
    else if (key == "demote-ratio") p.demote_ratio = std::stod(value);
    else if (key == "half-life-us") p.score_half_life_us = std::stoull(value);
    else if (key == "ttl-us") p.block_ttl_us = std::stoull(value);
    else if (key == "rate-alpha") p.rate_alpha = std::stod(value);
    else if (key == "min-clicks") p.min_clicks = std::stoull(value);
    else if (key == "max-sources") p.max_sources = std::stoull(value);
    else if (key == "by-publisher") p.key_by_publisher = value == "1" || value == "true";
    else throw std::invalid_argument("--verify-enforce: unknown key '" + key + "'");
  }
  return p;
}

/// The deterministic click stream for one connection: Zipf users clicking
/// the connection's own ad. Both the wire path and the oracle replay call
/// this, so they see byte-identical (id, t_us) sequences.
std::vector<wire::ClickRecord> make_clicks(std::uint32_t connection,
                                           std::size_t count,
                                           std::uint64_t seed) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = seed + connection;
  stream::MixedTrafficStream gen(opts);
  std::vector<wire::ClickRecord> clicks(count);
  for (auto& rec : clicks) {
    stream::Click c = gen.next();
    c.ad_id = connection;  // one ad per connection → one detector per conn
    rec = {c.ad_id, stream::click_identifier(c), c.time_us};
  }
  return clicks;
}

/// The v2 stream: same (ad, id, t) base as make_clicks, plus a
/// deterministic source column. Every 5th click comes from one of 3
/// attacker sources and draws its identifier from a 16-id pool — a
/// duplicate rate no honest Zipf source approaches, so an aggressive
/// --enforce spec escalates exactly those sources. Source values embed the
/// connection index, keeping every connection's sources disjoint (which is
/// what makes the per-connection enforcement oracle exact).
std::vector<wire::ClickRecordV2> make_clicks_v2(std::uint32_t connection,
                                                std::size_t count,
                                                std::uint64_t seed) {
  stream::MixedTrafficStream::Options opts;
  opts.seed = seed + connection;
  stream::MixedTrafficStream gen(opts);
  std::vector<wire::ClickRecordV2> clicks(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream::Click c = gen.next();
    c.ad_id = connection;
    wire::ClickRecordV2& rec = clicks[i];
    rec = {c.ad_id, stream::click_identifier(c), c.time_us, 0};
    if (i % 5 == 0) {
      rec.source_ip = 0x0a00'0000u | (connection << 8) | (i % 3);
      rec.click_id = 0xbad0'0000'0000'0000ull | (connection << 8) | (i % 16);
    } else {
      rec.source_ip = 0x6400'0000u | (connection << 8) | (i % 32);
    }
  }
  return clicks;
}

struct ConnResult {
  std::uint64_t clicks = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t server_clicks = 0;      ///< from DRAIN_ACK
  std::uint64_t server_duplicates = 0;  ///< from DRAIN_ACK
  std::uint32_t loop_id = 0;            ///< accepting loop, from HELLO_ACK
  std::vector<double> rtt_us;           ///< one sample per batch
  std::vector<char> verdicts;           ///< wire verdict bits, in order
  std::string error;                    ///< nonempty = connection failed
};

void run_connection(std::uint32_t index, const std::string& host,
                    std::uint16_t port, const std::vector<wire::ClickRecord>& clicks,
                    const std::vector<wire::ClickRecordV2>* clicks_v2,
                    std::size_t batch, std::size_t inflight, int sndbuf,
                    ConnResult& out) {
  try {
    server::BlockingClient client;
    if (sndbuf > 0) {
      // Symmetric kernel budget: --sndbuf throttles both directions of
      // the client socket, not just the outbound half.
      client.set_sndbuf(sndbuf);
      client.set_rcvbuf(sndbuf);
    }
    client.connect(host, port);
    client.handshake(clicks_v2 != nullptr ? wire::kProtocolVersionV2
                                          : wire::kProtocolVersion);
    out.loop_id = client.loop_id();

    const std::size_t total =
        clicks_v2 != nullptr ? clicks_v2->size() : clicks.size();
    const std::size_t total_batches = (total + batch - 1) / batch;
    out.rtt_us.reserve(total_batches);
    out.verdicts.reserve(total);
    std::vector<std::chrono::steady_clock::time_point> sent_at(total_batches);
    std::uint64_t next_send = 0;
    std::uint64_t next_recv = 0;

    auto recv_one = [&]() {
      wire::FrameView frame;
      if (!client.read_frame(frame)) {
        throw std::runtime_error("server closed before all verdicts");
      }
      if (frame.type != wire::FrameType::kVerdictBatch) {
        throw std::runtime_error(std::string("unexpected frame ") +
                                 wire::frame_type_name(frame.type));
      }
      wire::VerdictBatchView view;
      std::string err;
      if (!wire::parse_verdict_batch(frame.payload, view, err)) {
        throw std::runtime_error(err);
      }
      if (view.seq != next_recv) {
        throw std::runtime_error("verdict batches out of order");
      }
      out.rtt_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - sent_at[view.seq])
              .count());
      for (std::uint32_t i = 0; i < view.count; ++i) {
        out.verdicts.push_back(view.duplicate(i) ? 1 : 0);
        out.duplicates += view.duplicate(i) ? 1 : 0;
      }
      out.clicks += view.count;
      ++next_recv;
    };

    while (next_send < total_batches) {
      while (next_send - next_recv >= inflight) recv_one();
      const std::size_t off = next_send * batch;
      const std::size_t n = std::min(batch, total - off);
      sent_at[next_send] = std::chrono::steady_clock::now();
      if (clicks_v2 != nullptr) {
        client.send_click_batch_v2(
            next_send,
            std::span<const wire::ClickRecordV2>(&(*clicks_v2)[off], n));
      } else {
        client.send_click_batch(
            next_send, std::span<const wire::ClickRecord>(&clicks[off], n));
      }
      ++next_send;
    }
    while (next_recv < total_batches) recv_one();

    client.send_drain();
    wire::FrameView frame;
    if (!client.read_frame(frame) ||
        frame.type != wire::FrameType::kDrainAck) {
      throw std::runtime_error("no DRAIN_ACK");
    }
    std::string err;
    if (!wire::parse_drain_ack(frame.payload, out.server_clicks,
                               out.server_duplicates, err)) {
      throw std::runtime_error(err);
    }
  } catch (const std::exception& e) {
    out.error = "connection " + std::to_string(index) + ": " + e.what();
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv);
  try {
    const std::string connect = flag(flags, "connect", "127.0.0.1:4817");
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) usage(argv[0]);
    const std::string host = connect.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        std::stoul(connect.substr(colon + 1)));

    const auto connections =
        static_cast<std::uint32_t>(flag_u64(flags, "connections", 4));
    const std::uint64_t total_clicks = flag_u64(flags, "clicks", 1'000'000);
    const std::size_t batch = flag_u64(flags, "batch", 1024);
    // --verify-enforce defaults inflight to 1 (and rejects more below):
    // enforcement verdicts are batch-scoped, see the check after parsing.
    const std::string enforce_spec = flag(flags, "verify-enforce", "");
    const std::size_t inflight = std::max<std::uint64_t>(
        1, flag_u64(flags, "inflight", enforce_spec.empty() ? 4 : 1));
    const std::uint64_t seed = flag_u64(flags, "seed", 1);
    const bool verify = flag(flags, "verify", "on") == "on";
    const bool v2 = flag(flags, "v2", "off") == "on" || !enforce_spec.empty();
    const int sndbuf = static_cast<int>(flag_u64(flags, "sndbuf", 0));
    const std::uint64_t expected_loops = flag_u64(flags, "loops", 0);
    if (connections == 0 || batch == 0 ||
        batch > wire::kMaxClicksPerBatch) {
      usage(argv[0]);
    }
    if (!enforce_spec.empty() && (connections != 1 || inflight != 1)) {
      // Two exactness preconditions. Connections: the ledger's
      // Space-Saving offender sketch is global, so its evidence bounds
      // couple every source the daemon sees — only a single connection
      // replays a shared ledger bit-exactly. Inflight: EnforcingSink
      // decides a whole offer batch before observing any of it, so
      // verdicts depend on offer boundaries — lock-step keeps the daemon
      // at exactly one wire frame per offer, matching the oracle's.
      std::fprintf(stderr,
                   "ppc_loadgen: --verify-enforce requires --connections=1 "
                   "and --inflight=1\n");
      return 2;
    }

    server::DetectorConfig cfg;
    cfg.window = server::parse_window_spec(
        flag(flags, "window", "jumping:1048576:8"));
    cfg.memory_bits = flag_u64(flags, "memory-mib", 16) << 23;
    cfg.hashes = flag_u64(flags, "hashes", 7);
    cfg.backend = server::parse_backend_spec(flag(flags, "backend", "auto"));
    cfg.shards = flag_u64(flags, "shards", 1);
    cfg.owners = flag_u64(flags, "owners", 1);
    const std::string engine = flag(flags, "engine", "auto");
    if (engine == "on") {
      cfg.engine = core::ShardedDetector::EngineMode::kSpscOwner;
    } else if (engine == "off") {
      cfg.engine = core::ShardedDetector::EngineMode::kMutex;
    } else if (engine != "auto") {
      usage(argv[0]);
    }

    // Pre-generate every connection's stream so generation cost is outside
    // the timed window.
    const std::uint64_t per_conn = total_clicks / connections;
    std::printf("ppc_loadgen: %u connection(s) x %llu clicks, batch=%zu, "
                "inflight=%zu, seed=%llu → %s:%u\n",
                connections, static_cast<unsigned long long>(per_conn), batch,
                inflight, static_cast<unsigned long long>(seed), host.c_str(),
                port);
    std::vector<std::vector<wire::ClickRecord>> streams(connections);
    std::vector<std::vector<wire::ClickRecordV2>> streams_v2(connections);
    for (std::uint32_t c = 0; c < connections; ++c) {
      if (v2) {
        streams_v2[c] = make_clicks_v2(c, per_conn, seed);
      } else {
        streams[c] = make_clicks(c, per_conn, seed);
      }
    }

    std::vector<ConnResult> results(connections);
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(connections);
      for (std::uint32_t c = 0; c < connections; ++c) {
        threads.emplace_back(run_connection, c, host, port,
                             std::cref(streams[c]),
                             v2 ? &streams_v2[c] : nullptr, batch, inflight,
                             sndbuf, std::ref(results[c]));
      }
      for (auto& t : threads) t.join();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::uint64_t clicks = 0, dups = 0;
    std::vector<double> rtts;
    for (const ConnResult& r : results) {
      if (!r.error.empty()) {
        std::fprintf(stderr, "ppc_loadgen: %s\n", r.error.c_str());
        return 1;
      }
      clicks += r.clicks;
      dups += r.duplicates;
      rtts.insert(rtts.end(), r.rtt_us.begin(), r.rtt_us.end());
    }
    std::sort(rtts.begin(), rtts.end());
    std::printf("ppc_loadgen: %llu clicks in %.2f s = %.3f Mclicks/s; "
                "%llu duplicates (%.2f%%)\n",
                static_cast<unsigned long long>(clicks), secs,
                secs > 0 ? static_cast<double>(clicks) / secs / 1e6 : 0.0,
                static_cast<unsigned long long>(dups),
                clicks > 0 ? 100.0 * static_cast<double>(dups) /
                                 static_cast<double>(clicks)
                           : 0.0);
    std::printf("ppc_loadgen: batch round-trip p50=%.0f us p99=%.0f us "
                "(%zu batches)\n",
                percentile(rtts, 0.50), percentile(rtts, 0.99), rtts.size());

    int exit_code = 0;

    if (expected_loops > 0) {
      // Acceptance mode: per-connection RTT skew plus the kernel's
      // SO_REUSEPORT accept spread across the server's loops.
      std::vector<std::uint64_t> per_loop(expected_loops, 0);
      double p50_min = 0.0, p50_max = 0.0;
      bool first = true;
      for (std::uint32_t c = 0; c < connections; ++c) {
        ConnResult& r = results[c];
        std::sort(r.rtt_us.begin(), r.rtt_us.end());
        const double p50 = percentile(r.rtt_us, 0.50);
        std::printf("ppc_loadgen:   conn %u → loop %u: rtt p50=%.0f us "
                    "p99=%.0f us\n",
                    c, r.loop_id, p50, percentile(r.rtt_us, 0.99));
        if (first || p50 < p50_min) p50_min = p50;
        if (first || p50 > p50_max) p50_max = p50;
        first = false;
        if (r.loop_id < expected_loops) {
          ++per_loop[r.loop_id];
        } else {
          std::fprintf(stderr,
                       "ppc_loadgen: conn %u reports loop %u, beyond the "
                       "expected %llu loops\n",
                       c, r.loop_id,
                       static_cast<unsigned long long>(expected_loops));
          exit_code = 1;
        }
      }
      std::printf("ppc_loadgen: rtt skew across connections: p50 max/min = "
                  "%.2fx\n",
                  p50_min > 0 ? p50_max / p50_min : 0.0);
      std::uint64_t empty_loops = 0;
      for (std::uint64_t l = 0; l < expected_loops; ++l) {
        std::printf("ppc_loadgen:   loop %llu accepted %llu connection(s)\n",
                    static_cast<unsigned long long>(l),
                    static_cast<unsigned long long>(per_loop[l]));
        if (per_loop[l] == 0) ++empty_loops;
      }
      if (connections >= expected_loops && empty_loops > 0) {
        // SO_REUSEPORT hashes the 4-tuple, so a small connection count can
        // legitimately collide onto fewer loops; on 1-core hosts the
        // kernel may also favor the loop that is runnable. Warn there,
        // fail only when real parallelism was available.
        if (std::thread::hardware_concurrency() <= 1) {
          std::printf("ppc_loadgen: WARNING: %llu of %llu loops accepted no "
                      "connection (1-core host: accept balancing is "
                      "best-effort)\n",
                      static_cast<unsigned long long>(empty_loops),
                      static_cast<unsigned long long>(expected_loops));
        } else {
          std::fprintf(stderr,
                       "ppc_loadgen: accept balancing FAILED: %llu of %llu "
                       "loops accepted no connection\n",
                       static_cast<unsigned long long>(empty_loops),
                       static_cast<unsigned long long>(expected_loops));
          exit_code = 1;
        }
      }
    }
    for (std::uint32_t c = 0; c < connections; ++c) {
      const ConnResult& r = results[c];
      if (r.server_clicks != r.clicks || r.server_duplicates != r.duplicates) {
        std::fprintf(stderr,
                     "ppc_loadgen: connection %u DRAIN_ACK mismatch: server "
                     "says %llu clicks / %llu dups, client saw %llu / %llu\n",
                     c, static_cast<unsigned long long>(r.server_clicks),
                     static_cast<unsigned long long>(r.server_duplicates),
                     static_cast<unsigned long long>(r.clicks),
                     static_cast<unsigned long long>(r.duplicates));
        exit_code = 1;
      }
    }

    if (verify) {
      std::uint64_t mismatches = 0;
      std::uint64_t oracle_rejected = 0;
      for (std::uint32_t c = 0; c < connections; ++c) {
        const auto& got = results[c].verdicts;
        if (!enforce_spec.empty()) {
          // Enforcement oracle: the exact sink stack ppcd builds for
          // --enforce=SPEC (single-connection mode, so this replay sees
          // the identical click order the daemon's shared ledger saw).
          const auto detector = server::build_detector(cfg);
          server::DetectorSink base(*detector);
          enforce::ReputationLedger ledger(parse_enforce_spec(enforce_spec));
          server::EnforcingSink oracle_sink(base, ledger);
          const auto& stream = streams_v2[c];
          std::vector<std::uint32_t> ads(batch), sources(batch);
          std::vector<core::ClickId> ids(batch);
          std::vector<std::uint64_t> times(batch);
          std::vector<char> expected(batch);
          for (std::size_t off = 0; off < stream.size(); off += batch) {
            const std::size_t n = std::min(batch, stream.size() - off);
            for (std::size_t i = 0; i < n; ++i) {
              const wire::ClickRecordV2& rec = stream[off + i];
              ads[i] = rec.ad_id;
              ids[i] = rec.click_id;
              times[i] = rec.t_us;
              sources[i] = rec.source_ip;
            }
            oracle_sink.offer_with_sources(
                {ads.data(), n}, {ids.data(), n}, {times.data(), n},
                {sources.data(), n},
                {reinterpret_cast<bool*>(expected.data()), n});
            for (std::size_t i = 0; i < n; ++i) {
              const std::size_t pos = off + i;
              if (pos < got.size() && (got[pos] != 0) != (expected[i] != 0)) {
                if (mismatches < 5) {
                  std::fprintf(
                      stderr,
                      "ppc_loadgen: verdict mismatch conn %u click %zu: "
                      "wire=%d enforce-oracle=%d\n",
                      c, pos, got[pos], expected[i] != 0 ? 1 : 0);
                }
                ++mismatches;
              }
            }
          }
          oracle_rejected += oracle_sink.rejected();
        } else {
          const auto oracle = server::build_detector(cfg);
          const std::size_t count =
              v2 ? streams_v2[c].size() : streams[c].size();
          for (std::size_t i = 0; i < count; ++i) {
            // A non-enforcing daemon ignores the v2 source column, so the
            // plain detector oracle covers both wire dialects.
            const auto [id, t] =
                v2 ? std::pair{streams_v2[c][i].click_id,
                               streams_v2[c][i].t_us}
                   : std::pair{streams[c][i].click_id, streams[c][i].t_us};
            const bool expected = oracle->offer(id, t);
            if (i < got.size() && (got[i] != 0) != expected) {
              if (mismatches < 5) {
                std::fprintf(stderr,
                             "ppc_loadgen: verdict mismatch conn %u click %zu: "
                             "wire=%d oracle=%d\n",
                             c, i, got[i], expected ? 1 : 0);
              }
              ++mismatches;
            }
          }
        }
      }
      if (!enforce_spec.empty()) {
        std::printf("ppc_loadgen: enforce oracle rejected %llu click(s) at "
                    "the wire\n",
                    static_cast<unsigned long long>(oracle_rejected));
      }
      if (mismatches != 0) {
        std::fprintf(stderr,
                     "ppc_loadgen: oracle verification FAILED "
                     "(%llu mismatches)\n",
                     static_cast<unsigned long long>(mismatches));
        exit_code = 1;
      } else {
        std::printf("ppc_loadgen: oracle verification OK — wire verdicts "
                    "bit-identical to in-process replay\n");
      }
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppc_loadgen: %s\n", e.what());
    return 1;
  }
}
